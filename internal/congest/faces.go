package congest

import (
	"planarflow/internal/planar"
)

// faceToken circulates the minimum dart ID around each face boundary.
type faceToken struct {
	min planar.Dart
	hop int
}

// IdentifyFaces runs the distributed face-identification primitive: every
// dart learns the minimum dart ID on its face boundary, which serves as the
// face's identifier (Property 4 of Ĝ elects face leaders the same way; the
// paper's Õ(D)-round version routes these tokens through low-congestion
// shortcuts, which pa.DualPA prices — this engine version pays the face
// length directly and is used to validate the primitive's output).
//
// Mechanics: each vertex initially launches, for every incident dart d, a
// token along the face-successor of d; a vertex receiving a token on dart d
// forwards it along FaceSuccessor(d) until the token has traveled the whole
// boundary. One message per dart per round: CONGEST-legal.
func IdentifyFaces(e Runner) ([]planar.Dart, Stats) {
	g := e.Graph()
	nd := g.NumDarts()
	minOf := make([]planar.Dart, nd)
	for d := range minOf {
		minOf[d] = planar.Dart(d)
	}
	maxFace := 0
	for f := 0; f < g.Faces().NumFaces(); f++ {
		if l := g.Faces().Len(f); l > maxFace {
			maxFace = l
		}
	}

	stats := e.Run(func(c *Ctx) {
		v := c.V
		if c.Round == 0 {
			// Launch one token per incident dart d: it travels the face of
			// d, starting across FaceSuccessor(d). The sender of the hop on
			// dart x is Tail(x); the token describes the face of the dart
			// *preceding* x on the boundary.
			for _, d := range g.Rotation(v) {
				// v owns darts leaving v; the face of Rev(d) (arriving at v)
				// continues with FaceSuccessor(Rev(d)) which leaves v.
				in := planar.Rev(d)
				next := g.FaceSuccessor(in)
				c.Send(next, faceToken{min: in, hop: 1}, e.B())
			}
		}
		for _, m := range c.In {
			tok, ok := m.Payload.(faceToken)
			if !ok {
				continue
			}
			// Token arrived along dart m.In; it reports boundary darts of
			// the face containing m.In.
			if tok.min < minOf[m.In] {
				minOf[m.In] = tok.min
			}
			if tok.hop < maxFace {
				next := g.FaceSuccessor(m.In)
				c.Send(next, faceToken{min: minID(tok.min, minOf[m.In]), hop: tok.hop + 1}, e.B())
			}
		}
		c.Halt()
	}, 4*maxFace+8)
	return minOf, stats
}

func minID(a, b planar.Dart) planar.Dart {
	if a < b {
		return a
	}
	return b
}
