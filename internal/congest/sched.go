package congest

// This file is the shared simulation core both CONGEST engines compile to.
//
// A network is flattened into out-slots: every (vertex, outgoing link) pair
// gets one slot in a flat mailbox slice. Sending writes the slot; delivery
// one round later reads it. Two mailbox generations are kept (double
// buffering): the round's steps read generation "cur" and write generation
// "nxt", and the two slices are swapped at the round boundary — no channels,
// no per-round allocation.
//
// Inboxes live in a single arena with one fixed segment per vertex, filled
// each round by scanning the vertex's in-slots in a precomputed order, so
// inbox construction neither allocates nor sorts and is deterministic by
// construction.
//
// Steps run on a worker pool that is spawned at most once per Run and
// reused across rounds (rounds with small active sets are run inline on the
// calling goroutine, which is cheaper than waking the pool). Only the
// active set steps: a vertex that called Halt sleeps until a message
// arrives for it, so quiescent regions of the network cost nothing. Halt is
// therefore a *sleep* — "I have nothing to do until I hear something" — and
// the run ends when every vertex sleeps in a round that sent no messages,
// exactly the termination condition the channel engines used.

import (
	"sync"
	"sync/atomic"
)

// inRef names one in-slot of a vertex: the flat mailbox slot the message is
// read from and the receiver-visible key it is labeled with (the dart id for
// Engine, the local port number for PortEngine). A vertex's inRefs are
// stored pre-sorted in inbox order.
type inRef struct {
	slot int32
	key  int32
}

// topology is the immutable flattened communication structure shared by all
// Runs of an engine: who each out-slot delivers to, and each vertex's
// in-slots in deterministic inbox order.
type topology struct {
	n     int
	dest  []int32   // dest[s] = vertex that slot s delivers to
	in    [][]inRef // in[v] = v's in-slots, inbox order
	inOff []int32   // arena segment of v is [inOff[v], inOff[v+1])
}

func (t *topology) finishOffsets() {
	t.inOff = make([]int32, t.n+1)
	for v := 0; v < t.n; v++ {
		t.inOff[v+1] = t.inOff[v] + int32(len(t.in[v]))
	}
}

// mailSlot is one flat mailbox cell: the message in flight on one link, if
// any. Duplicate sends on a full slot are dropped and counted as violations,
// matching the capacity-1 channels of the original engine.
type mailSlot struct {
	payload any
	bits    int32
	full    bool
}

// schedCounters accumulates one worker's per-round measurements and
// worklist contributions; merged by the coordinator at the round barrier.
// The hot counters are padded away from the slice headers so workers don't
// false-share.
type schedCounters struct {
	delivered  int64
	sent       int64
	bits       int64
	violations int64
	_          [4]int64 // pad the counters to a cache line

	// stayed collects vertices this worker stepped that did not halt;
	// woke collects destinations whose wake flag this worker won (CAS).
	// Together they form the next round's active set without an O(n) scan.
	stayed []int32
	woke   []int32
}

// schedRun is the per-Run mutable state of the scheduler.
type schedRun[M any] struct {
	topo *topology
	b    int

	cur, nxt []mailSlot
	arena    []M
	wake     []atomic.Bool

	active []int32
	round  int

	idx      atomic.Int64
	counters []schedCounters

	wrap func(key int32, payload any, bits int32) M
	step func(v, round int, in []M, out outbox[M]) bool
}

// outbox is the send surface handed to the adapter's step callback; it
// routes messages into the next mailbox generation and accounts them on the
// calling worker's counters.
type outbox[M any] struct {
	r  *schedRun[M]
	ws *schedCounters
}

// post sends a message on out-slot s, enforcing the bit budget and the
// one-message-per-link-per-round rule exactly as the channel engines did:
// oversized messages are delivered but counted as violations; a second send
// on the same slot in one round is dropped and counted.
func (o outbox[M]) post(slot int32, payload any, bits int) {
	r := o.r
	if bits > r.b {
		o.ws.violations++
	}
	s := &r.nxt[slot]
	if s.full {
		o.ws.violations++
		return
	}
	s.payload = payload
	s.bits = int32(bits)
	s.full = true
	o.ws.bits += int64(bits)
	o.ws.sent++
	d := r.topo.dest[slot]
	if r.wake[d].CompareAndSwap(false, true) {
		o.ws.woke = append(o.ws.woke, d)
	}
}

// processVertex delivers v's pending messages into its arena segment, runs
// its step, and records its halt vote. Safe to run concurrently for
// distinct vertices: in-slot sets and arena segments are disjoint, and each
// out-slot has a unique owner.
func (r *schedRun[M]) processVertex(v int32, ws *schedCounters) {
	off := r.topo.inOff[v]
	seg := r.arena[off:off:r.topo.inOff[v+1]]
	for _, ref := range r.topo.in[v] {
		s := &r.cur[ref.slot]
		if s.full {
			seg = append(seg, r.wrap(ref.key, s.payload, s.bits))
			s.full = false
			s.payload = nil
		}
	}
	ws.delivered += int64(len(seg))
	if halted := r.step(int(v), r.round, seg, outbox[M]{r: r, ws: ws}); !halted {
		ws.stayed = append(ws.stayed, v)
	}
}

// claim runs the worker share of one round: vertices are claimed from the
// active list via an atomic cursor.
func (r *schedRun[M]) claim(ws *schedCounters) {
	n := int64(len(r.active))
	for {
		i := r.idx.Add(1) - 1
		if i >= n {
			return
		}
		r.processVertex(r.active[i], ws)
	}
}

// serialThreshold is the active-set size below which a round is stepped
// inline instead of on the pool; tiny rounds (BFS wavefronts, tree phases)
// are dominated by handoff cost otherwise.
const serialThreshold = 64

// runSched executes the synchronous round loop over a topology. wrap
// converts a delivered slot into the adapter's message type; step runs one
// vertex for one round and reports whether it went to sleep. Semantics
// (Stats fields, violation rules, termination) match the channel engines.
func runSched[M any](
	topo *topology,
	b, workers, maxRounds int,
	wrap func(key int32, payload any, bits int32) M,
	step func(v, round int, in []M, out outbox[M]) bool,
) Stats {
	n := topo.n
	nslots := len(topo.dest)
	if workers < 1 {
		workers = 1
	}

	r := &schedRun[M]{
		topo:     topo,
		b:        b,
		cur:      make([]mailSlot, nslots),
		nxt:      make([]mailSlot, nslots),
		arena:    make([]M, nslots),
		wake:     make([]atomic.Bool, n),
		active:   make([]int32, n),
		counters: make([]schedCounters, workers+1),
		wrap:     wrap,
		step:     step,
	}
	for v := range r.active {
		r.active[v] = int32(v) // round 0: every vertex steps
	}
	nextActive := make([]int32, 0, n)

	// Lazily-started persistent pool: one goroutine per worker, reused
	// every parallel round, shut down when the run returns.
	var (
		start   chan struct{}
		wg      sync.WaitGroup
		started bool
	)
	defer func() {
		if started {
			close(start)
		}
	}()
	ensurePool := func() {
		if started {
			return
		}
		started = true
		start = make(chan struct{})
		for w := 0; w < workers; w++ {
			ws := &r.counters[w]
			go func() {
				for range start {
					r.claim(ws)
					wg.Done()
				}
			}()
		}
	}

	var stats Stats
	for r.round = 0; r.round < maxRounds; r.round++ {
		for i := range r.counters {
			c := &r.counters[i]
			c.delivered, c.sent, c.bits, c.violations = 0, 0, 0, 0
			c.stayed = c.stayed[:0]
			c.woke = c.woke[:0]
		}
		if len(r.active) < serialThreshold || workers == 1 {
			ws := &r.counters[workers]
			for _, v := range r.active {
				r.processVertex(v, ws)
			}
		} else {
			ensurePool()
			r.idx.Store(0)
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				start <- struct{}{}
			}
			wg.Wait()
		}
		stats.Rounds++

		var delivered, sent int64
		for i := range r.counters {
			c := &r.counters[i]
			delivered += c.delivered
			sent += c.sent
			stats.Bits += c.bits
			stats.Violations += int(c.violations)
		}
		stats.Messages += delivered
		if int(delivered) > stats.MaxInflight {
			stats.MaxInflight = int(delivered)
		}

		// Round barrier: the next active set is the union of the workers'
		// stayed lists (stepped, did not halt) and woke lists (received a
		// send, flag won by CAS) — no O(n) scan. A vertex in both lists is
		// deduplicated by checking its still-set wake flag during the
		// stayed pass, then the woke pass appends it and clears the flag.
		nextActive = nextActive[:0]
		allHalted := true
		for i := range r.counters {
			for _, v := range r.counters[i].stayed {
				allHalted = false
				if !r.wake[v].Load() {
					nextActive = append(nextActive, v)
				}
			}
		}
		for i := range r.counters {
			for _, v := range r.counters[i].woke {
				nextActive = append(nextActive, v)
				r.wake[v].Store(false)
			}
		}
		if sent == 0 && allHalted {
			stats.HaltedNormal = true
			return stats
		}
		r.active, nextActive = nextActive, r.active
		r.cur, r.nxt = r.nxt, r.cur
	}
	return stats
}
