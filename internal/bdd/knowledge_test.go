package bdd

import (
	"testing"

	"planarflow/internal/ledger"
	"planarflow/internal/planar"
)

func TestKnowledgeOnFamilies(t *testing.T) {
	rng := planar.NewRand(19)
	graphs := []*planar.Graph{
		planar.Grid(8, 8),
		planar.Grid(3, 20),
		planar.Cylinder(4, 8),
		planar.StackedTriangulation(120, rng),
		planar.NestedTriangles(10),
		planar.RemoveRandomEdges(planar.StackedTriangulation(80, rng), rng, 40),
	}
	for gi, g := range graphs {
		led := ledger.New()
		tree := Build(g, 14, led)
		before := led.Total()
		k := BuildKnowledge(tree, led)
		if led.Total() <= before {
			t.Fatalf("graph %d: knowledge acquisition charged nothing", gi)
		}
		if err := k.Verify(); err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
	}
}

func TestKnowledgeBagChainsCoverLevels(t *testing.T) {
	g := planar.Grid(7, 7)
	tree := Build(g, 12, ledger.New())
	k := BuildKnowledge(tree, ledger.New())
	// Each dart's chain ends at a leaf bag.
	for d := planar.Dart(0); int(d) < g.NumDarts(); d++ {
		chain := k.BagChain[d]
		last := tree.Bags[chain[len(chain)-1]]
		if !last.IsLeaf() {
			// A dart's chain may stop early only if its bag stopped
			// splitting; that bag is by definition a leaf.
			t.Fatalf("dart %d chain ends at non-leaf bag %d", d, last.ID)
		}
	}
}

func TestKnowledgeCriticalMatchesSplitFaces(t *testing.T) {
	g := planar.Grid(9, 9)
	tree := Build(g, 16, ledger.New())
	k := BuildKnowledge(tree, ledger.New())
	for _, b := range tree.Bags {
		if b.IsLeaf() {
			if k.Critical[b.ID] != -1 {
				t.Fatalf("leaf bag %d has critical face", b.ID)
			}
			continue
		}
		// Count whole faces split across children; must match Critical.
		crit := -1
		for _, f := range b.Faces {
			if b.Whole[f] && b.Children[0].FaceSet[f] && b.Children[1].FaceSet[f] {
				crit = f
			}
		}
		if crit != k.Critical[b.ID] {
			t.Fatalf("bag %d: critical=%d knowledge=%d", b.ID, crit, k.Critical[b.ID])
		}
	}
}
