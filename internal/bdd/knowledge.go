package bdd

import (
	"fmt"
	"math/bits"

	"planarflow/internal/ledger"
	"planarflow/internal/planar"
)

// Knowledge is the distributed-knowledge layer of §5.1.3 (Lemmas 5.10–5.14,
// Properties 13–14): what each vertex locally knows about the decomposition
// after the per-level broadcasts of Algorithm 1. Concretely, for every
// incident dart a vertex knows (a) the chain of bags containing the dart,
// one per level (Lemma 5.10), (b) the face/face-part node the dart belongs
// to in each of those bags together with whether it is whole, a part, or
// the bag's critical face (Property 13), and (c) whether the dart's edge
// has a dual edge in each bag, i.e. whether both darts are present
// (Property 14).
//
// The construction itself is derived from the BDD; what this layer adds is
// the *round accounting* of acquiring it distributively (face-ID assignment
// via Ĝ, critical-face detection and the pipelined face-part upcasts of
// Algorithm 1) and a Verify pass asserting the knowledge is consistent with
// the central structures.
type Knowledge struct {
	T *BDD

	// BagChain[d] lists, per level, the bag containing dart d
	// (Lemma 5.5: exactly one per level until the dart's leaf).
	BagChain [][]int

	// HasDual[bagID] reports per edge whether its dual edge exists in the
	// bag (both darts present) — Property 14.
	HasDual []map[int]bool

	// Critical[bagID] is the face split between the bag's children (-1 if
	// none) — the critical face of Lemma 5.3.
	Critical []int
}

// BuildKnowledge derives the per-vertex local views and charges the
// broadcast rounds of Algorithm 1: per level, the critical-face
// announcement plus one pipelined upcast message per face-part (O(log n)
// messages of Õ(1) bits over a depth-Õ(D) tree).
func BuildKnowledge(t *BDD, led *ledger.Ledger) *Knowledge {
	g := t.G
	k := &Knowledge{
		T:        t,
		BagChain: make([][]int, g.NumDarts()),
		HasDual:  make([]map[int]bool, len(t.Bags)),
		Critical: make([]int, len(t.Bags)),
	}
	levelCost := map[int]int{}
	for _, b := range t.Bags {
		k.HasDual[b.ID] = make(map[int]bool)
		for e := 0; e < g.M(); e++ {
			if b.EdgeIn[e] {
				k.HasDual[b.ID][e] = b.InBag[planar.ForwardDart(e)] && b.InBag[planar.BackwardDart(e)]
			}
		}
		k.Critical[b.ID] = -1
		faceParts := 0
		if !b.IsLeaf() {
			for _, f := range b.Faces {
				split := b.Children[0].FaceSet[f] && b.Children[1].FaceSet[f]
				if !split {
					continue
				}
				if b.Whole[f] {
					k.Critical[b.ID] = f
				} else {
					faceParts++
				}
			}
		}
		for _, d := range b.Darts {
			k.BagChain[d] = append(k.BagChain[d], b.ID)
		}
		// Algorithm 1 cost for this bag: one critical-face broadcast plus
		// one pipelined upcast message per face-part over the bag's tree.
		cost := b.TreeDepth + 2 + faceParts
		if cost > levelCost[b.Level] {
			levelCost[b.Level] = cost
		}
	}
	// Face-ID assignment on Ĝ (Lemma 5.11) is an Õ(D)-round PA; the
	// per-level Algorithm 1 phases run in parallel with 2x overhead.
	logn := int64(bits.Len(uint(g.N())))
	led.Charge("knowledge/face-ids", logn*int64(t.Root.TreeDepth+2))
	for lvl := 0; lvl < t.Depth; lvl++ {
		led.Charge("knowledge/algorithm1-level", 2*int64(levelCost[lvl]))
	}
	// Sort chains root-to-leaf (bags were appended in creation order, which
	// is already level order).
	return k
}

// Verify asserts the distributed-knowledge invariants against the central
// decomposition: Lemma 5.5 (one bag per level per dart, reversal-on-hole
// implication) and Properties 13/14. Returns the first violation.
func (k *Knowledge) Verify() error {
	g := k.T.G
	for d := planar.Dart(0); int(d) < g.NumDarts(); d++ {
		chain := k.BagChain[d]
		if len(chain) == 0 {
			return fmt.Errorf("bdd: dart %d in no bag", d)
		}
		if k.T.Bags[chain[0]].ID != k.T.Root.ID {
			return fmt.Errorf("bdd: dart %d chain does not start at root", d)
		}
		prevLevel := -1
		for _, id := range chain {
			b := k.T.Bags[id]
			if b.Level != prevLevel+1 {
				return fmt.Errorf("bdd: dart %d skips level %d", d, prevLevel+1)
			}
			prevLevel = b.Level
			if !b.InBag[d] {
				return fmt.Errorf("bdd: dart %d chain lists bag %d that lacks it", d, id)
			}
		}
	}
	for _, b := range k.T.Bags {
		for e, has := range k.HasDual[b.ID] {
			want := b.InBag[planar.ForwardDart(e)] && b.InBag[planar.BackwardDart(e)]
			if has != want {
				return fmt.Errorf("bdd: bag %d edge %d dual-existence mismatch", b.ID, e)
			}
			if !has && b.EdgeIn[e] {
				// Lemma 5.5: the missing dart lies on an ancestor hole, so
				// the edge must appear on some ancestor separator.
				missing := planar.ForwardDart(e)
				if b.InBag[missing] {
					missing = planar.BackwardDart(e)
				}
				onAncestorSep := false
				for a := b.Parent; a != nil; a = a.Parent {
					for _, se := range a.SXEdges {
						if se == e {
							onAncestorSep = true
						}
					}
				}
				if !onAncestorSep {
					return fmt.Errorf("bdd: bag %d edge %d half-present without ancestor separator", b.ID, e)
				}
			}
		}
		// At most one critical (whole) face per bag — Lemma 5.3.
		if c := k.Critical[b.ID]; c >= 0 {
			if !b.Whole[c] {
				return fmt.Errorf("bdd: bag %d critical face %d is not whole", b.ID, c)
			}
			if b.Sep != nil && b.Sep.EX.Real {
				return fmt.Errorf("bdd: bag %d has a critical face despite real e_X", b.ID)
			}
		}
	}
	return nil
}
