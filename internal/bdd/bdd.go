// Package bdd builds the Bounded Diameter Decomposition of Li–Parter [27]
// extended with the paper's dual bookkeeping (§5.1): bags are dart sets, a
// dual bag X* has one node per face *or face-part* of G present in X, the
// separator S_X of a bag is a cycle of two BFS-tree paths plus a possibly
// virtual edge e_X, and F_X (dual separator) collects the dual endpoints of
// S_X edges plus the faces partitioned between child bags.
//
// Face-part identity follows the paper exactly: all darts of the same face
// of G inside a bag form a single dual node (a face-part may be
// disconnected); it is a whole face when the bag contains every dart of the
// face. By Lemma 5.3 at most one whole face is partitioned per bag (the
// critical face containing the virtual edge), which our separator guarantees
// by construction: a virtual chord splits exactly its own sub-embedding
// orbit.
package bdd

import (
	"context"
	"math/bits"
	"sort"

	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/separator"
)

// Bag is one node of the decomposition tree.
type Bag struct {
	ID     int
	Level  int
	Parent *Bag
	// Children has length 0 (leaf) or 2 (interior side 0, exterior side 1 of
	// the separator).
	Children []*Bag

	// Darts of the bag: dart d is in the bag iff the face region d borders
	// belongs to the bag. An edge may have one dart in the bag (its other
	// dart lies on a hole of an ancestor separator).
	Darts  []planar.Dart
	InBag  []bool // indexed by dart
	EdgeIn []bool // edge has >= 1 dart in bag

	// Faces present (by G face id) and whether each is whole here.
	Faces   []int
	FaceSet map[int]bool
	Whole   map[int]bool

	// Separator data (non-leaf bags).
	Sep     *separator.Result
	SXEdges []int // real edges of the separator cycle
	// DualSXEdges lists separator edges that exist in X* (both darts in the
	// bag); their dual arcs connect faces of X*.
	DualSXEdges []int
	// FX is the dual separator: faces incident to a dual S_X edge or
	// present in both children (Thm 5.2 property 11).
	FX []int

	// TreeDepth is the measured BFS depth of the bag's edge-subgraph (round
	// accounting uses it in place of the paper's Õ(D) bound).
	TreeDepth int
}

// IsLeaf reports whether the bag has no children.
func (b *Bag) IsLeaf() bool { return len(b.Children) == 0 }

// NumEdges returns the number of edges with at least one dart in the bag.
func (b *Bag) NumEdges() int {
	n := 0
	for _, in := range b.EdgeIn {
		if in {
			n++
		}
	}
	return n
}

// ChildContaining returns the index of the unique child whose face set
// contains f wholly-on-one-side, or -1 if f appears in both children (then f
// is partitioned and belongs to FX).
func (b *Bag) ChildContaining(f int) int {
	in0 := b.Children[0].FaceSet[f]
	in1 := b.Children[1].FaceSet[f]
	switch {
	case in0 && in1:
		return -1
	case in0:
		return 0
	case in1:
		return 1
	default:
		return -2 // face absent from both (cannot happen for faces of b)
	}
}

// BDD is the full decomposition.
type BDD struct {
	G         *planar.Graph
	Root      *Bag
	Bags      []*Bag
	LeafLimit int
	Depth     int // number of levels (root = level 0)
}

// DefaultLeafLimit returns the paper's Θ(D log n) leaf bag size for g, with
// D estimated by a double BFS sweep.
func DefaultLeafLimit(g *planar.Graph) int {
	l := g.DiameterLowerBound() * (bits.Len(uint(g.N())) + 1)
	if l < 16 {
		l = 16
	}
	return l
}

// Build computes the decomposition of g, splitting bags until they have at
// most leafLimit edges (the paper uses Θ(D log n); pass 0 for
// DefaultLeafLimit). Construction rounds are charged per level from the
// measured bag depths (the distributed BDD of [27] builds each level in
// Õ(D) rounds).
func Build(g *planar.Graph, leafLimit int, led *ledger.Ledger) *BDD {
	t, _ := BuildContext(context.Background(), g, leafLimit, led)
	return t
}

// BuildContext is Build with a cancellation checkpoint before every bag
// split: a canceled context aborts the remaining construction and returns
// ctx.Err() with a nil tree, charging nothing (level charges are emitted
// only on completion). The background context never fails, so Build wraps
// this without an error path.
func BuildContext(ctx context.Context, g *planar.Graph, leafLimit int, led *ledger.Ledger) (*BDD, error) {
	if leafLimit == 0 {
		leafLimit = DefaultLeafLimit(g)
	}
	if leafLimit < 4 {
		leafLimit = 4
	}
	t := &BDD{G: g, LeafLimit: leafLimit}
	fd := g.Faces()

	root := &Bag{ID: 0, Level: 0}
	root.InBag = make([]bool, g.NumDarts())
	root.Darts = make([]planar.Dart, g.NumDarts())
	for d := range root.Darts {
		root.Darts[d] = planar.Dart(d)
		root.InBag[d] = true
	}
	t.Root = root
	t.Bags = append(t.Bags, root)
	t.fillDerived(root)

	queue := []*Bag{root}
	maxDepthAtLevel := map[int]int{}
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b := queue[0]
		queue = queue[1:]
		if b.Level+1 > t.Depth {
			t.Depth = b.Level + 1
		}
		if b.TreeDepth > maxDepthAtLevel[b.Level] {
			maxDepthAtLevel[b.Level] = b.TreeDepth
		}
		if b.NumEdges() <= leafLimit {
			continue // leaf
		}
		if !t.split(b, fd) {
			continue // no usable separator: leaf
		}
		queue = append(queue, b.Children...)
	}

	// Charge construction: each level costs Õ(depth) rounds ([17]+[27]);
	// bags of a level run in parallel with constant overhead (property 7).
	logn := int64(bits.Len(uint(g.N()))) + 1
	for lvl := 0; lvl < t.Depth; lvl++ {
		led.Charge("bdd/construct-level", logn*int64(maxDepthAtLevel[lvl]+2))
	}
	return t, nil
}

// fillDerived computes EdgeIn, Faces, Whole and TreeDepth of a bag whose
// Darts/InBag are set.
func (t *BDD) fillDerived(b *Bag) {
	g := t.G
	fd := g.Faces()
	b.EdgeIn = make([]bool, g.M())
	b.FaceSet = make(map[int]bool)
	faceDarts := map[int]int{}
	for _, d := range b.Darts {
		b.EdgeIn[planar.EdgeOf(d)] = true
		f := fd.FaceOf(d)
		if !b.FaceSet[f] {
			b.FaceSet[f] = true
			b.Faces = append(b.Faces, f)
		}
		faceDarts[f]++
	}
	b.Whole = make(map[int]bool, len(b.Faces))
	for _, f := range b.Faces {
		b.Whole[f] = faceDarts[f] == fd.Len(f)
	}
	// Measured subgraph BFS depth (root at first bag edge endpoint).
	for e := 0; e < g.M(); e++ {
		if b.EdgeIn[e] {
			bfs := g.BFSWithin(g.Edge(e).U, func(d planar.Dart) bool { return b.EdgeIn[planar.EdgeOf(d)] })
			b.TreeDepth = bfs.Depth
			break
		}
	}
}

// split computes the separator of b and creates its two children; returns
// false if no useful split exists.
func (t *BDD) split(b *Bag, fd *planar.FaceData) bool {
	g := t.G
	sf := planar.NewSubFaces(g, b.EdgeIn)
	sep := separator.FindCycleSeparator(g, b.EdgeIn, sf)
	if !sep.Found {
		return false
	}

	childDarts := [2][]planar.Dart{}
	for _, d := range b.Darts {
		s := sep.Side[d]
		if s < 0 {
			return false // inconsistent side assignment; treat as leaf
		}
		childDarts[s] = append(childDarts[s], d)
	}
	if len(childDarts[0]) == 0 || len(childDarts[1]) == 0 {
		return false
	}

	b.Sep = sep
	b.SXEdges = append([]int(nil), sep.CycleEdges...)
	for side := 0; side < 2; side++ {
		c := &Bag{
			ID:     len(t.Bags),
			Level:  b.Level + 1,
			Parent: b,
			Darts:  childDarts[side],
		}
		c.InBag = make([]bool, g.NumDarts())
		for _, d := range c.Darts {
			c.InBag[d] = true
		}
		t.Bags = append(t.Bags, c)
		t.fillDerived(c)
		b.Children = append(b.Children, c)
	}
	// Guard against non-shrinking splits.
	pe := b.NumEdges()
	if b.Children[0].NumEdges() >= pe || b.Children[1].NumEdges() >= pe {
		t.Bags = t.Bags[:len(t.Bags)-2]
		b.Children = nil
		b.Sep = nil
		b.SXEdges = nil
		return false
	}

	// Dual S_X edges: separator edges with both darts in this bag.
	for _, e := range b.SXEdges {
		if b.InBag[planar.ForwardDart(e)] && b.InBag[planar.BackwardDart(e)] {
			b.DualSXEdges = append(b.DualSXEdges, e)
		}
	}
	// FX: dual endpoints of dual S_X edges + faces present in both children.
	fx := map[int]bool{}
	for _, e := range b.DualSXEdges {
		fx[fd.FaceOf(planar.ForwardDart(e))] = true
		fx[fd.FaceOf(planar.BackwardDart(e))] = true
	}
	for _, f := range b.Faces {
		if b.Children[0].FaceSet[f] && b.Children[1].FaceSet[f] {
			fx[f] = true
		}
	}
	for f := range fx {
		b.FX = append(b.FX, f)
	}
	// Sorted so identical builds produce identical trees byte-for-byte
	// (label content is FX-order-independent, but the snapshot codec and
	// the DDG node numbering read the slice as stored).
	sort.Ints(b.FX)
	return true
}

// DualArcs enumerates the arcs of the dual bag X*: for every dart d with d
// and rev(d) both in the bag, an arc FaceOf(d) -> FaceOf(rev(d)). The
// callback receives the dart (its dual arc's identity).
func (b *Bag) DualArcs(g *planar.Graph, visit func(d planar.Dart, from, to int)) {
	fd := g.Faces()
	for _, d := range b.Darts {
		if b.InBag[planar.Rev(d)] {
			visit(d, fd.FaceOf(d), fd.FaceOf(planar.Rev(d)))
		}
	}
}

// FootprintBytes estimates the resident memory of the decomposition: the
// per-bag dart lists, membership bitmaps, face tables and separator data.
// It is an accounting estimate (used by eviction budgeting), not an exact
// heap measurement: slices count len·elemsize, maps count entries at the
// ~48 bytes/entry Go runtime rule of thumb.
func (t *BDD) FootprintBytes() int64 {
	const (
		wordSize = 8
		mapEntry = 48 // amortized per-entry cost of a small-key Go map
		bagFixed = 160
	)
	var b int64
	for _, bag := range t.Bags {
		b += bagFixed
		b += int64(len(bag.Darts)) * wordSize
		b += int64(len(bag.InBag)) + int64(len(bag.EdgeIn)) // bools
		b += int64(len(bag.Faces)) * wordSize
		b += int64(len(bag.FaceSet)+len(bag.Whole)) * mapEntry
		b += int64(len(bag.SXEdges)+len(bag.DualSXEdges)+len(bag.FX)) * wordSize
		if bag.Sep != nil {
			b += int64(len(bag.Sep.CycleVertices)+len(bag.Sep.CycleEdges)) * wordSize
			b += int64(len(bag.Sep.Side)) // int8 side assignment per dart
		}
	}
	return b
}

// MaxSXSize returns the largest separator cycle (vertex count) over bags.
func (t *BDD) MaxSXSize() int {
	m := 0
	for _, b := range t.Bags {
		if b.Sep != nil && len(b.Sep.CycleVertices) > m {
			m = len(b.Sep.CycleVertices)
		}
	}
	return m
}

// MaxFX returns the largest dual separator size over bags.
func (t *BDD) MaxFX() int {
	m := 0
	for _, b := range t.Bags {
		if len(b.FX) > m {
			m = len(b.FX)
		}
	}
	return m
}

// MaxFaceParts returns, over all bags, the maximum number of non-whole faces
// (face-parts) present in a single bag (property 9 of Thm 5.2).
func (t *BDD) MaxFaceParts() int {
	m := 0
	for _, b := range t.Bags {
		cnt := 0
		for _, f := range b.Faces {
			if !b.Whole[f] {
				cnt++
			}
		}
		if cnt > m {
			m = cnt
		}
	}
	return m
}
