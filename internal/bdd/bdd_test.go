package bdd

import (
	"math/bits"
	"testing"

	"planarflow/internal/ledger"
	"planarflow/internal/planar"
)

func buildOn(t *testing.T, g *planar.Graph, leafLimit int) *BDD {
	t.Helper()
	led := ledger.New()
	bd := Build(g, leafLimit, led)
	if led.Total() == 0 {
		t.Fatal("no construction rounds charged")
	}
	return bd
}

func TestRootBag(t *testing.T) {
	g := planar.Grid(4, 4)
	bd := buildOn(t, g, 8)
	root := bd.Root
	if len(root.Darts) != g.NumDarts() {
		t.Fatalf("root darts=%d want %d", len(root.Darts), g.NumDarts())
	}
	if len(root.Faces) != g.Faces().NumFaces() {
		t.Fatalf("root faces=%d want %d", len(root.Faces), g.Faces().NumFaces())
	}
	for _, f := range root.Faces {
		if !root.Whole[f] {
			t.Fatalf("face %d not whole at root", f)
		}
	}
}

func TestLeafSizes(t *testing.T) {
	g := planar.Grid(10, 10)
	leafLimit := 20
	bd := buildOn(t, g, leafLimit)
	for _, b := range bd.Bags {
		if b.IsLeaf() {
			continue
		}
		if b.NumEdges() <= leafLimit {
			t.Fatalf("bag %d split below leaf limit", b.ID)
		}
	}
	foundLeaf := false
	for _, b := range bd.Bags {
		if b.IsLeaf() {
			foundLeaf = true
		}
	}
	if !foundLeaf {
		t.Fatal("no leaves")
	}
}

func TestDartPartitionPerLevel(t *testing.T) {
	// Property: each dart of a bag goes to exactly one child (Lemma 5.5).
	g := planar.Grid(8, 8)
	bd := buildOn(t, g, 16)
	for _, b := range bd.Bags {
		if b.IsLeaf() {
			continue
		}
		seen := make(map[planar.Dart]int)
		for ci, c := range b.Children {
			for _, d := range c.Darts {
				if prev, ok := seen[d]; ok {
					t.Fatalf("bag %d: dart %d in children %d and %d", b.ID, d, prev, ci)
				}
				seen[d] = ci
			}
		}
		if len(seen) != len(b.Darts) {
			t.Fatalf("bag %d: children darts %d != parent %d", b.ID, len(seen), len(b.Darts))
		}
		for _, d := range b.Darts {
			if _, ok := seen[d]; !ok {
				t.Fatalf("bag %d: dart %d lost", b.ID, d)
			}
		}
	}
}

func TestEdgeUnionProperty(t *testing.T) {
	// Property 6: X = union of child bags (as edge sets).
	g := planar.Grid(7, 9)
	bd := buildOn(t, g, 16)
	for _, b := range bd.Bags {
		if b.IsLeaf() {
			continue
		}
		union := make([]bool, g.M())
		for _, c := range b.Children {
			for e := range union {
				if c.EdgeIn[e] {
					union[e] = true
				}
			}
		}
		for e := range union {
			if union[e] != b.EdgeIn[e] {
				t.Fatalf("bag %d: edge %d union mismatch", b.ID, e)
			}
		}
	}
}

func TestEdgeInAtMostTwoBagsPerLevel(t *testing.T) {
	// Property 7.
	g := planar.Grid(9, 9)
	bd := buildOn(t, g, 16)
	byLevel := map[int][]*Bag{}
	for _, b := range bd.Bags {
		byLevel[b.Level] = append(byLevel[b.Level], b)
	}
	for lvl, bags := range byLevel {
		cnt := make([]int, g.M())
		for _, b := range bags {
			for e := 0; e < g.M(); e++ {
				if b.EdgeIn[e] {
					cnt[e]++
				}
			}
		}
		for e, c := range cnt {
			if c > 2 {
				t.Fatalf("level %d: edge %d in %d bags", lvl, e, c)
			}
		}
	}
}

func TestDepthLogarithmic(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {6, 20}, {16, 16}} {
		g := planar.Grid(dims[0], dims[1])
		bd := buildOn(t, g, 12)
		logm := bits.Len(uint(g.M()))
		if bd.Depth > 4*logm {
			t.Fatalf("grid %v: depth %d > 4*log m (%d)", dims, bd.Depth, logm)
		}
	}
}

func TestAtMostOneWholeFaceSplitPerBag(t *testing.T) {
	// Lemma 5.3: at most one face that is whole in X is partitioned between
	// X's children.
	rng := planar.NewRand(77)
	graphs := []*planar.Graph{
		planar.Grid(9, 9),
		planar.Cylinder(5, 9),
		planar.StackedTriangulation(120, rng),
		planar.RemoveRandomEdges(planar.StackedTriangulation(120, rng), rng, 60),
	}
	for gi, g := range graphs {
		bd := buildOn(t, g, 12)
		for _, b := range bd.Bags {
			if b.IsLeaf() {
				continue
			}
			splitWhole := 0
			for _, f := range b.Faces {
				if b.Whole[f] && b.Children[0].FaceSet[f] && b.Children[1].FaceSet[f] {
					splitWhole++
				}
			}
			if splitWhole > 1 {
				t.Fatalf("graph %d bag %d: %d whole faces split", gi, b.ID, splitWhole)
			}
			if splitWhole == 1 && b.Sep.EX.Real {
				t.Fatalf("graph %d bag %d: whole face split despite real e_X", gi, b.ID)
			}
		}
	}
}

func TestFacePartsLogarithmic(t *testing.T) {
	// Property 9: each bag contains O(log n) face-parts.
	g := planar.Grid(12, 12)
	bd := buildOn(t, g, 16)
	logn := bits.Len(uint(g.N()))
	if fp := bd.MaxFaceParts(); fp > 6*logn {
		t.Fatalf("max face-parts %d > 6*log n (%d)", fp, logn)
	}
}

func TestFXSeparatesDualBag(t *testing.T) {
	// Property 11 (Lemma 5.15): any dual arc of X* whose endpoints avoid FX
	// must lie entirely within one child bag; removing FX disconnects
	// cross-child paths.
	g := planar.Grid(8, 8)
	bd := buildOn(t, g, 16)
	fd := g.Faces()
	for _, b := range bd.Bags {
		if b.IsLeaf() {
			continue
		}
		fx := map[int]bool{}
		for _, f := range b.FX {
			fx[f] = true
		}
		b.DualArcs(g, func(d planar.Dart, from, to int) {
			if fx[from] || fx[to] {
				return
			}
			// Both endpoints outside FX: the arc must live in one child.
			inChild := false
			for _, c := range b.Children {
				if c.InBag[d] && c.InBag[planar.Rev(d)] &&
					c.FaceSet[from] && c.FaceSet[to] {
					inChild = true
				}
			}
			if !inChild {
				t.Fatalf("bag %d: dual arc %d->%d (dart %d) escapes children without touching FX",
					b.ID, from, to, d)
			}
		})
		_ = fd
	}
}

func TestSeparatorSizeScalesWithDepth(t *testing.T) {
	// Property 4 analogue: |S_X| = O(bag BFS depth); on grids this is Õ(D).
	g := planar.Grid(14, 14)
	bd := buildOn(t, g, 16)
	for _, b := range bd.Bags {
		if b.Sep == nil {
			continue
		}
		if len(b.Sep.CycleVertices) > 2*b.TreeDepth+2 {
			t.Fatalf("bag %d: |S_X|=%d depth=%d", b.ID, len(b.Sep.CycleVertices), b.TreeDepth)
		}
	}
}

func TestChildBagsConnected(t *testing.T) {
	g := planar.Grid(8, 10)
	bd := buildOn(t, g, 16)
	for _, b := range bd.Bags {
		// The bag's edge-subgraph must be connected.
		first := -1
		cnt := 0
		for e := 0; e < g.M(); e++ {
			if b.EdgeIn[e] {
				cnt++
				if first == -1 {
					first = e
				}
			}
		}
		if first == -1 {
			t.Fatalf("bag %d empty", b.ID)
		}
		bfs := g.BFSWithin(g.Edge(first).U, func(d planar.Dart) bool { return b.EdgeIn[planar.EdgeOf(d)] })
		reach := 0
		for e := 0; e < g.M(); e++ {
			if b.EdgeIn[e] && bfs.Dist[g.Edge(e).U] >= 0 && bfs.Dist[g.Edge(e).V] >= 0 {
				reach++
			}
		}
		if reach != cnt {
			t.Fatalf("bag %d disconnected: %d/%d edges reachable", b.ID, reach, cnt)
		}
	}
}

func TestDualSXEdgesAreInXStar(t *testing.T) {
	g := planar.Grid(8, 8)
	bd := buildOn(t, g, 16)
	for _, b := range bd.Bags {
		for _, e := range b.DualSXEdges {
			if !b.InBag[planar.ForwardDart(e)] || !b.InBag[planar.BackwardDart(e)] {
				t.Fatalf("bag %d: dual S_X edge %d missing a dart", b.ID, e)
			}
		}
	}
}
