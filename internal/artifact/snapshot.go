package artifact

// Persistence: Export writes the built substrates of a bundle through
// the snapshot codec; ImportInto seeds an (typically fresh) bundle's
// slots from a snapshot so queries find every restored substrate warm
// and never rebuild it. Together they turn the artifact layer's
// "build once, serve many" into "build once, serve many, survive the
// process".

import (
	"fmt"
	"io"
	"sort"

	"planarflow/internal/bdd"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
	"planarflow/internal/primallabel"
	"planarflow/internal/snapshot"
)

// restoredPhase is the ledger phase restored substrates carry: their
// original construction cost travels in the snapshot, so serving stats
// (Stats, BuildLedger, the store's build-rounds accounting) keep
// reporting what the substrate cost to build, not what it cost to load.
const restoredPhase = "snapshot/restored-build"

// Export writes a snapshot of every substrate built so far (in-flight
// builds are excluded until they publish) to w. Sections are emitted in
// deterministic order — trees by leaf limit, then dual and primal
// labelings by (length kind, leaf limit) — so equal states encode to
// equal bytes. A bundle with nothing built exports a valid, empty
// snapshot.
func (p *Prepared) Export(w io.Writer) error {
	var c snapshot.Contents
	p.st.mu.Lock()
	for ll, s := range p.st.trees {
		if s.ready {
			c.Trees = append(c.Trees, snapshot.TreeEntry{
				LeafLimit: ll, BuildRounds: s.led.Total(), Tree: s.val,
			})
		}
	}
	for k, s := range p.st.duals {
		if s.ready {
			c.Duals = append(c.Duals, snapshot.DualEntry{
				Kind: byte(k.kind), LeafLimit: k.leafLimit,
				BuildRounds: s.led.Total(), Labeling: s.val,
			})
		}
	}
	for k, s := range p.st.primals {
		if s.ready {
			c.Primals = append(c.Primals, snapshot.PrimalEntry{
				Kind: byte(k.kind), LeafLimit: k.leafLimit,
				BuildRounds: s.led.Total(), Labeling: s.val,
			})
		}
	}
	p.st.mu.Unlock()
	sort.Slice(c.Trees, func(i, j int) bool { return c.Trees[i].LeafLimit < c.Trees[j].LeafLimit })
	sort.Slice(c.Duals, func(i, j int) bool {
		if c.Duals[i].Kind != c.Duals[j].Kind {
			return c.Duals[i].Kind < c.Duals[j].Kind
		}
		return c.Duals[i].LeafLimit < c.Duals[j].LeafLimit
	})
	sort.Slice(c.Primals, func(i, j int) bool {
		if c.Primals[i].Kind != c.Primals[j].Kind {
			return c.Primals[i].Kind < c.Primals[j].Kind
		}
		return c.Primals[i].LeafLimit < c.Primals[j].LeafLimit
	})
	return snapshot.Encode(w, p.st.g, &c)
}

// ImportInto decodes a snapshot against the bundle's graph and seeds the
// substrate cache: every restored substrate publishes as a ready slot,
// so Do/Warm and the named queries never rebuild it. Slots that already
// hold a value (or an in-flight build) are left alone — the resident
// substrate wins, since it is at least as fresh as the snapshot. Errors
// wrap the snapshot package's typed sentinels (snapshot.ErrFingerprint
// when the snapshot belongs to a different graph, snapshot.ErrChecksum /
// ErrTruncated / ErrCorrupt for damaged input); a failed import changes
// nothing.
func (p *Prepared) ImportInto(r io.Reader) error {
	c, err := snapshot.Decode(r, p.st.g, func(kind byte) ([]int64, error) {
		if kind > byte(FreeReversal) {
			return nil, fmt.Errorf("%w: unknown length kind %d", snapshot.ErrCorrupt, kind)
		}
		return Lengths(p.st.g, LengthKind(kind)), nil
	})
	if err != nil {
		return err
	}
	p.st.mu.Lock()
	defer p.st.mu.Unlock()
	for _, t := range c.Trees {
		s := p.st.trees[t.LeafLimit]
		if s == nil {
			s = &slot[*bdd.BDD]{}
			p.st.trees[t.LeafLimit] = s
		}
		seedSlot(p, s, t.Tree, t.BuildRounds, t.Tree.FootprintBytes())
	}
	for _, la := range c.Duals {
		key := labelKey{LengthKind(la.Kind), la.LeafLimit}
		s := p.st.duals[key]
		if s == nil {
			s = &slot[*duallabel.Labeling]{}
			p.st.duals[key] = s
		}
		seedSlot(p, s, la.Labeling, la.BuildRounds, la.Labeling.FootprintBytes())
	}
	for _, la := range c.Primals {
		key := labelKey{LengthKind(la.Kind), la.LeafLimit}
		s := p.st.primals[key]
		if s == nil {
			s = &slot[*primallabel.Labeling]{}
			p.st.primals[key] = s
		}
		seedSlot(p, s, la.Labeling, la.BuildRounds, la.Labeling.FootprintBytes())
	}
	return nil
}

// seedSlot publishes a restored value into an empty slot (caller holds
// the state lock). Occupied or in-flight slots are skipped: the import
// must not yank a substrate out from under live queries.
func seedSlot[T any](p *Prepared, s *slot[T], val T, buildRounds int64, bytes int64) {
	if s.ready || s.inflight != nil {
		return
	}
	led := ledger.New()
	led.Charge(restoredPhase, buildRounds)
	s.val, s.led, s.bytes, s.ready = val, led, bytes, true
	// Keep the BuildLedger == sum-of-slot-costs invariant: the restored
	// substrate's original construction cost counts as build cost here too.
	p.st.build.Merge(led)
}
