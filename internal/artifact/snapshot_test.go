package artifact

import (
	"bytes"
	"testing"

	"planarflow/internal/ledger"
	"planarflow/internal/planar"
)

// TestImportSkipsOccupiedSlots: a resident substrate wins over the
// snapshot — importing must not yank a built substrate out from under
// live queries, and the skipped import must not double-count build cost.
func TestImportSkipsOccupiedSlots(t *testing.T) {
	g := planar.WithRandomWeights(planar.Grid(5, 5), planar.NewRand(3), 1, 9, 1, 16)

	// Donor bundle: tree + undirected dual labeling.
	donor := New(g)
	led := ledger.New()
	if _, err := donor.DualLabels(Undirected, 0, led); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := donor.Export(&snap); err != nil {
		t.Fatal(err)
	}

	// Receiver already built its own tree; the import must keep it and
	// seed only the labeling.
	recv := New(g)
	ownTree, err := recv.Tree(0, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	before := recv.Stats()
	if err := recv.ImportInto(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	after := recv.Stats()
	if len(after.Substrates) != len(before.Substrates)+1 {
		t.Fatalf("import added %d substrates, want 1", len(after.Substrates)-len(before.Substrates))
	}
	keptTree, err := recv.Tree(0, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if keptTree != ownTree {
		t.Fatal("import replaced a resident substrate")
	}
	// The labeling arrived warm: fetching it charges nothing new.
	qled := ledger.New()
	if _, err := recv.DualLabels(Undirected, 0, qled); err != nil {
		t.Fatal(err)
	}
	if qled.Total() != 0 {
		t.Fatalf("restored labeling charged %d rounds on fetch", qled.Total())
	}
	// BuildLedger == sum of slot costs still holds.
	var slotSum int64
	for _, s := range after.Substrates {
		slotSum += s.BuildRounds
	}
	if got := recv.BuildLedger().Total(); got != slotSum {
		t.Fatalf("BuildLedger %d != slot sum %d", got, slotSum)
	}
}

// TestExportImportEmpty: an unbuilt bundle exports a valid empty
// snapshot, and importing it is a no-op.
func TestExportImportEmpty(t *testing.T) {
	g := planar.Grid(4, 4)
	p := New(g)
	var snap bytes.Buffer
	if err := p.Export(&snap); err != nil {
		t.Fatal(err)
	}
	q := New(g)
	if err := q.ImportInto(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if n := len(q.Stats().Substrates); n != 0 {
		t.Fatalf("empty import produced %d substrates", n)
	}
}
