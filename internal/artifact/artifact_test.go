package artifact

import (
	"context"
	"errors"
	"sync"
	"testing"

	"planarflow/internal/bdd"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/primallabel"
	"planarflow/internal/spath"
)

func TestLengthsKinds(t *testing.T) {
	g := planar.Grid(3, 3).WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
		old.Weight = int64(e + 1)
		return old
	})
	und := Lengths(g, Undirected)
	dir := Lengths(g, Directed)
	fr := Lengths(g, FreeReversal)
	for e := 0; e < g.M(); e++ {
		w := g.Edge(e).Weight
		fw, bw := planar.ForwardDart(e), planar.BackwardDart(e)
		if und[fw] != w || und[bw] != w {
			t.Fatalf("undirected lengths of edge %d: %d/%d want %d/%d", e, und[fw], und[bw], w, w)
		}
		if dir[fw] != w || dir[bw] != spath.Inf {
			t.Fatalf("directed lengths of edge %d: %d/%d", e, dir[fw], dir[bw])
		}
		if fr[fw] != w || fr[bw] != 0 {
			t.Fatalf("free-reversal lengths of edge %d: %d/%d", e, fr[fw], fr[bw])
		}
	}
}

// mustTree and friends unwrap the background-context getters, whose only
// error path is cancellation.
func mustTree(t *testing.T, p *Prepared, leafLimit int, led *ledger.Ledger) *bdd.BDD {
	t.Helper()
	tree, err := p.Tree(leafLimit, led)
	if err != nil {
		t.Fatalf("Tree: %v", err)
	}
	return tree
}

func mustDual(t *testing.T, p *Prepared, kind LengthKind, leafLimit int, led *ledger.Ledger) *duallabel.Labeling {
	t.Helper()
	la, err := p.DualLabels(kind, leafLimit, led)
	if err != nil {
		t.Fatalf("DualLabels: %v", err)
	}
	return la
}

func mustPrimal(t *testing.T, p *Prepared, kind LengthKind, leafLimit int, led *ledger.Ledger) *primallabel.Labeling {
	t.Helper()
	la, err := p.PrimalLabels(kind, leafLimit, led)
	if err != nil {
		t.Fatalf("PrimalLabels: %v", err)
	}
	return la
}

func TestTreeCachedPerLeafLimit(t *testing.T) {
	p := New(planar.Grid(5, 5))
	led1 := ledger.New()
	t1 := mustTree(t, p, 0, led1)
	if b, _ := led1.BuildSplit(); b <= 0 {
		t.Fatalf("first build charged %d build rounds", b)
	}
	led2 := ledger.New()
	if t2 := mustTree(t, p, 0, led2); t2 != t1 {
		t.Fatal("default-leaf-limit tree not cached")
	}
	if led2.Total() != 0 {
		t.Fatalf("cache hit charged %d rounds", led2.Total())
	}
	// A different leaf limit is a different substrate.
	led3 := ledger.New()
	if t3 := mustTree(t, p, 8, led3); t3 == t1 {
		t.Fatal("distinct leaf limits share a tree")
	}
	if led3.Total() == 0 {
		t.Fatal("distinct leaf limit built for free")
	}
	// Explicitly passing the resolved default hits the same slot as 0.
	led4 := ledger.New()
	if t4 := mustTree(t, p, p.ResolveLeafLimit(0), led4); t4 != t1 || led4.Total() != 0 {
		t.Fatal("resolved default limit did not share the default slot")
	}
}

func TestLabelingsCachedAndShareTree(t *testing.T) {
	p := New(planar.Grid(4, 4))
	led := ledger.New()
	dl := mustDual(t, p, Undirected, 0, led)
	if dl.NegCycle {
		t.Fatal("unexpected negative cycle")
	}
	buildFirst, _ := led.BuildSplit()
	if buildFirst <= 0 {
		t.Fatal("no build cost charged for first labeling")
	}

	// Second kind reuses the cached tree: its build cost must be smaller
	// than the first (tree + labels) but positive (labels).
	led2 := ledger.New()
	pl := mustPrimal(t, p, Directed, 0, led2)
	if pl.NegCycle {
		t.Fatal("unexpected negative cycle")
	}
	buildSecond, _ := led2.BuildSplit()
	if buildSecond <= 0 || buildSecond >= buildFirst {
		t.Fatalf("second-substrate build cost %d, want in (0, %d)", buildSecond, buildFirst)
	}

	// Hits are free and return the identical object.
	led3 := ledger.New()
	if mustDual(t, p, Undirected, 0, led3) != dl || led3.Total() != 0 {
		t.Fatal("dual labeling cache hit not free")
	}
	led4 := ledger.New()
	if mustPrimal(t, p, Directed, 0, led4) != pl || led4.Total() != 0 {
		t.Fatal("primal labeling cache hit not free")
	}

	// The cumulative build ledger counts every substrate exactly once.
	wantTotal := buildFirst + buildSecond
	if got := p.BuildLedger().Total(); got != wantTotal {
		t.Fatalf("cumulative build ledger %d, want %d", got, wantTotal)
	}
}

func TestBuildEntriesAreBuildScoped(t *testing.T) {
	p := New(planar.Grid(4, 4))
	led := ledger.New()
	mustDual(t, p, Undirected, 0, led)
	if _, q := led.BuildSplit(); q != 0 {
		t.Fatalf("substrate construction leaked %d query-scoped rounds", q)
	}
	for _, e := range p.BuildLedger().Entries() {
		if e.Scope != ledger.Build {
			t.Fatalf("build ledger entry %+v not build-scoped", e)
		}
	}
}

func TestConcurrentFirstUseBuildsOnce(t *testing.T) {
	p := New(planar.Grid(6, 6))
	const workers = 16
	vals := make([]any, workers)
	totals := make([]int64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			led := ledger.New()
			la, err := p.DualLabels(Undirected, 0, led)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			vals[i] = la
			totals[i] = led.Total()
		}(i)
	}
	wg.Wait()
	var paid int
	for i := 1; i < workers; i++ {
		if vals[i] != vals[0] {
			t.Fatal("concurrent first use produced distinct labelings")
		}
	}
	for _, tot := range totals {
		if tot > 0 {
			paid++
		}
	}
	if paid != 1 {
		t.Fatalf("%d workers paid build cost, want exactly 1", paid)
	}
	// Exactly one tree + one labeling in the cumulative ledger.
	led := ledger.New()
	mustDual(t, p, Undirected, 0, led)
	if led.Total() != 0 {
		t.Fatal("post-race call rebuilt the labeling")
	}
}

func TestCanceledContextAbortsBuildAndReleasesSlot(t *testing.T) {
	p := New(planar.Grid(6, 6))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the first checkpoint must fire
	led := ledger.New()
	if _, err := p.WithContext(ctx).Tree(0, led); !errors.Is(err, context.Canceled) {
		t.Fatalf("Tree under canceled ctx: err=%v, want context.Canceled", err)
	}
	if led.Total() != 0 {
		t.Fatalf("aborted build charged %d rounds", led.Total())
	}
	if st := p.Stats(); len(st.Substrates) != 0 {
		t.Fatalf("aborted build published %d substrates", len(st.Substrates))
	}
	// The slot is released: a live context builds normally.
	led2 := ledger.New()
	tree := mustTree(t, p, 0, led2)
	if tree == nil || led2.Total() == 0 {
		t.Fatal("rebuild after aborted build did not run")
	}
	// Labeling getters propagate cancellation the same way.
	if _, err := p.WithContext(ctx).DualLabels(Undirected, 0, ledger.New()); !errors.Is(err, context.Canceled) {
		t.Fatalf("DualLabels under canceled ctx: err=%v", err)
	}
	if _, err := p.WithContext(ctx).PrimalLabels(Directed, 0, ledger.New()); !errors.Is(err, context.Canceled) {
		t.Fatalf("PrimalLabels under canceled ctx: err=%v", err)
	}
}

func TestCanceledWaiterLeavesBuilderRunning(t *testing.T) {
	p := New(planar.Grid(8, 8))
	ctx, cancel := context.WithCancel(context.Background())

	// Builder starts with a live context; a waiter joins with one that is
	// canceled mid-wait. The waiter must error out, the builder publish.
	started := make(chan struct{})
	builderDone := make(chan error, 1)
	go func() {
		close(started)
		_, err := p.Tree(0, ledger.New())
		builderDone <- err
	}()
	<-started
	waiterDone := make(chan error, 1)
	go func() {
		_, err := p.WithContext(ctx).Tree(0, ledger.New())
		waiterDone <- err
	}()
	cancel()
	if err := <-builderDone; err != nil {
		t.Fatalf("builder failed: %v", err)
	}
	// The waiter either joined before cancel (nil) or was canceled; both
	// orders are legal — what matters is it returned and the slot is warm.
	if err := <-waiterDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter: unexpected error %v", err)
	}
	led := ledger.New()
	mustTree(t, p, 0, led)
	if led.Total() != 0 {
		t.Fatal("slot not warm after builder finished")
	}
}

// TestPanickingBuilderReleasesSlot drives the slot machinery directly
// with a builder that panics, and asserts the panic propagates without
// poisoning the slot: the inflight channel is closed, and the next
// caller rebuilds successfully instead of hanging.
func TestPanickingBuilderReleasesSlot(t *testing.T) {
	p := New(planar.Grid(3, 3))
	s := &slot[int]{}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("builder panic did not propagate")
			}
		}()
		get(p, s, "test", func(ctx context.Context, led *ledger.Ledger) (int, int64, error) {
			panic("degenerate input")
		})
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, built, err := get(p, s, "test", func(ctx context.Context, led *ledger.Ledger) (int, int64, error) {
			return 7, 1, nil
		})
		if err != nil || !built || v != 7 {
			t.Errorf("rebuild after panic: v=%d built=%v err=%v", v, built, err)
		}
	}()
	<-done
}

func TestStatsFootprintAccounting(t *testing.T) {
	p := New(planar.Grid(6, 6))
	if st := p.Stats(); st.Bytes != 0 || st.BuildRounds != 0 || len(st.Substrates) != 0 {
		t.Fatalf("empty bundle has nonzero stats: %+v", st)
	}
	mustDual(t, p, Undirected, 0, ledger.New())
	mustPrimal(t, p, Directed, 0, ledger.New())
	st := p.Stats()
	if len(st.Substrates) != 3 { // bdd + dual + primal
		t.Fatalf("got %d substrates, want 3: %+v", len(st.Substrates), st.Substrates)
	}
	var bytes, rounds int64
	kinds := map[string]int{}
	for _, s := range st.Substrates {
		if s.Bytes <= 0 {
			t.Fatalf("substrate %+v has non-positive footprint", s)
		}
		if s.BuildRounds <= 0 {
			t.Fatalf("substrate %+v has non-positive build rounds", s)
		}
		bytes += s.Bytes
		rounds += s.BuildRounds
		kinds[s.Kind]++
	}
	if bytes != st.Bytes || rounds != st.BuildRounds {
		t.Fatalf("totals %d/%d don't match substrate sums %d/%d", st.Bytes, st.BuildRounds, bytes, rounds)
	}
	if kinds["bdd"] != 1 || kinds["dual-label"] != 1 || kinds["primal-label"] != 1 {
		t.Fatalf("unexpected kind distribution %v", kinds)
	}
	// Stats' total build rounds equal the cumulative build ledger.
	if got := p.BuildLedger().Total(); got != st.BuildRounds {
		t.Fatalf("stats build rounds %d != build ledger %d", st.BuildRounds, got)
	}
}
