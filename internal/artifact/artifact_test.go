package artifact

import (
	"sync"
	"testing"

	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

func TestLengthsKinds(t *testing.T) {
	g := planar.Grid(3, 3).WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
		old.Weight = int64(e + 1)
		return old
	})
	und := Lengths(g, Undirected)
	dir := Lengths(g, Directed)
	fr := Lengths(g, FreeReversal)
	for e := 0; e < g.M(); e++ {
		w := g.Edge(e).Weight
		fw, bw := planar.ForwardDart(e), planar.BackwardDart(e)
		if und[fw] != w || und[bw] != w {
			t.Fatalf("undirected lengths of edge %d: %d/%d want %d/%d", e, und[fw], und[bw], w, w)
		}
		if dir[fw] != w || dir[bw] != spath.Inf {
			t.Fatalf("directed lengths of edge %d: %d/%d", e, dir[fw], dir[bw])
		}
		if fr[fw] != w || fr[bw] != 0 {
			t.Fatalf("free-reversal lengths of edge %d: %d/%d", e, fr[fw], fr[bw])
		}
	}
}

func TestTreeCachedPerLeafLimit(t *testing.T) {
	p := New(planar.Grid(5, 5))
	led1 := ledger.New()
	t1 := p.Tree(0, led1)
	if b, _ := led1.BuildSplit(); b <= 0 {
		t.Fatalf("first build charged %d build rounds", b)
	}
	led2 := ledger.New()
	if t2 := p.Tree(0, led2); t2 != t1 {
		t.Fatal("default-leaf-limit tree not cached")
	}
	if led2.Total() != 0 {
		t.Fatalf("cache hit charged %d rounds", led2.Total())
	}
	// A different leaf limit is a different substrate.
	led3 := ledger.New()
	if t3 := p.Tree(8, led3); t3 == t1 {
		t.Fatal("distinct leaf limits share a tree")
	}
	if led3.Total() == 0 {
		t.Fatal("distinct leaf limit built for free")
	}
	// Explicitly passing the resolved default hits the same slot as 0.
	led4 := ledger.New()
	if t4 := p.Tree(p.ResolveLeafLimit(0), led4); t4 != t1 || led4.Total() != 0 {
		t.Fatal("resolved default limit did not share the default slot")
	}
}

func TestLabelingsCachedAndShareTree(t *testing.T) {
	p := New(planar.Grid(4, 4))
	led := ledger.New()
	dl := p.DualLabels(Undirected, 0, led)
	if dl.NegCycle {
		t.Fatal("unexpected negative cycle")
	}
	buildFirst, _ := led.BuildSplit()
	if buildFirst <= 0 {
		t.Fatal("no build cost charged for first labeling")
	}

	// Second kind reuses the cached tree: its build cost must be smaller
	// than the first (tree + labels) but positive (labels).
	led2 := ledger.New()
	pl := p.PrimalLabels(Directed, 0, led2)
	if pl.NegCycle {
		t.Fatal("unexpected negative cycle")
	}
	buildSecond, _ := led2.BuildSplit()
	if buildSecond <= 0 || buildSecond >= buildFirst {
		t.Fatalf("second-substrate build cost %d, want in (0, %d)", buildSecond, buildFirst)
	}

	// Hits are free and return the identical object.
	led3 := ledger.New()
	if p.DualLabels(Undirected, 0, led3) != dl || led3.Total() != 0 {
		t.Fatal("dual labeling cache hit not free")
	}
	led4 := ledger.New()
	if p.PrimalLabels(Directed, 0, led4) != pl || led4.Total() != 0 {
		t.Fatal("primal labeling cache hit not free")
	}

	// The cumulative build ledger counts every substrate exactly once.
	wantTotal := buildFirst + buildSecond
	if got := p.BuildLedger().Total(); got != wantTotal {
		t.Fatalf("cumulative build ledger %d, want %d", got, wantTotal)
	}
}

func TestBuildEntriesAreBuildScoped(t *testing.T) {
	p := New(planar.Grid(4, 4))
	led := ledger.New()
	p.DualLabels(Undirected, 0, led)
	if _, q := led.BuildSplit(); q != 0 {
		t.Fatalf("substrate construction leaked %d query-scoped rounds", q)
	}
	for _, e := range p.BuildLedger().Entries() {
		if e.Scope != ledger.Build {
			t.Fatalf("build ledger entry %+v not build-scoped", e)
		}
	}
}

func TestConcurrentFirstUseBuildsOnce(t *testing.T) {
	p := New(planar.Grid(6, 6))
	const workers = 16
	vals := make([]any, workers)
	totals := make([]int64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			led := ledger.New()
			vals[i] = p.DualLabels(Undirected, 0, led)
			totals[i] = led.Total()
		}(i)
	}
	wg.Wait()
	var paid int
	for i := 1; i < workers; i++ {
		if vals[i] != vals[0] {
			t.Fatal("concurrent first use produced distinct labelings")
		}
	}
	for _, tot := range totals {
		if tot > 0 {
			paid++
		}
	}
	if paid != 1 {
		t.Fatalf("%d workers paid build cost, want exactly 1", paid)
	}
	// Exactly one tree + one labeling in the cumulative ledger.
	led := ledger.New()
	p.DualLabels(Undirected, 0, led)
	if led.Total() != 0 {
		t.Fatal("post-race call rebuilt the labeling")
	}
}
