// Package artifact holds the prepared-graph bundle: the expensive, reusable
// substrates of the paper's algorithms — the Bounded Diameter Decomposition
// and the primal/dual distance labelings of §5 — built once per graph and
// served to many queries concurrently.
//
// The paper observes (§5) that the Õ(D)-bit distance labels "actually allow
// computation of all pairs shortest paths": once the BDD and a labeling
// exist, every further query decodes locally. Prepared realizes that split.
// Substrates are keyed by what determines them — the BDD by its leaf limit,
// a labeling by (length kind, leaf limit) — and built lazily under a
// sync.Once per slot, so concurrent queries needing the same substrate block
// on one construction and then share the immutable result.
//
// Round accounting: each slot builds into its own ledger; that snapshot is
// merged into the triggering query's ledger with ledger.Build scope exactly
// once (by the builder), so the first query on a graph reports the full
// build cost, later queries report Build=0, and the cumulative cost of
// everything built so far is available from BuildLedger.
package artifact

import (
	"sync"

	"planarflow/internal/bdd"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/primallabel"
)

// LengthKind identifies a per-dart length function derived from the graph's
// edge weights. Together with the leaf limit it keys a cached labeling.
type LengthKind int

const (
	// Undirected charges Weight(e) to both darts of e: the length function
	// of the undirected distance oracle and of dual SSSP under "both
	// crossing directions" semantics.
	Undirected LengthKind = iota
	// Directed charges Weight(e) to the forward dart and deactivates the
	// backward dart: one-way oracle semantics, and the directed-girth
	// instance.
	Directed
	// FreeReversal charges Weight(e) forward and 0 backward: the dual
	// length function of directed global minimum cut (§7), where crossing
	// an edge against its direction is free.
	FreeReversal
)

// Lengths materializes the per-dart length vector of a kind for g. The
// Undirected and Directed kinds are duallabel.UniformLengths' two modes;
// delegating keeps a single definition of the dart-length convention.
func Lengths(g *planar.Graph, kind LengthKind) []int64 {
	if kind != FreeReversal {
		return duallabel.UniformLengths(g, kind == Directed)
	}
	lens := make([]int64, g.NumDarts())
	for e := 0; e < g.M(); e++ {
		lens[planar.ForwardDart(e)] = g.Edge(e).Weight
		lens[planar.BackwardDart(e)] = 0
	}
	return lens
}

// labelKey identifies one cached labeling.
type labelKey struct {
	kind      LengthKind
	leafLimit int
}

// slot is one lazily-built substrate: a sync.Once guards construction, and
// the slot keeps the build-cost ledger so late arrivals can account it.
type slot[T any] struct {
	once sync.Once
	val  T
	led  *ledger.Ledger
}

// Prepared is the reusable artifact bundle of one embedded graph. Safe for
// concurrent use; all substrates are immutable once built.
type Prepared struct {
	g *planar.Graph

	mu      sync.Mutex
	trees   map[int]*slot[*bdd.BDD]
	duals   map[labelKey]*slot[*duallabel.Labeling]
	primals map[labelKey]*slot[*primallabel.Labeling]

	build *ledger.Ledger // cumulative build cost of every substrate built
}

// New wraps g in an empty prepared bundle; nothing is built until queried.
func New(g *planar.Graph) *Prepared {
	return &Prepared{
		g:       g,
		trees:   map[int]*slot[*bdd.BDD]{},
		duals:   map[labelKey]*slot[*duallabel.Labeling]{},
		primals: map[labelKey]*slot[*primallabel.Labeling]{},
		build:   ledger.New(),
	}
}

// Graph returns the underlying embedded graph.
func (p *Prepared) Graph() *planar.Graph { return p.g }

// ResolveLeafLimit normalizes a leaf-limit request the way bdd.Build does
// (0 means the paper's Θ(D log n) default), so equal requests share a slot.
func (p *Prepared) ResolveLeafLimit(leafLimit int) int {
	if leafLimit == 0 {
		leafLimit = bdd.DefaultLeafLimit(p.g)
	}
	if leafLimit < 4 {
		leafLimit = 4
	}
	return leafLimit
}

// Tree returns the BDD for the given leaf limit, building it on first use.
// The build cost is charged to led (Build scope) by whichever call triggers
// construction; cache hits charge nothing.
func (p *Prepared) Tree(leafLimit int, led *ledger.Ledger) *bdd.BDD {
	leafLimit = p.ResolveLeafLimit(leafLimit)
	p.mu.Lock()
	s, ok := p.trees[leafLimit]
	if !ok {
		s = &slot[*bdd.BDD]{led: ledger.New()}
		p.trees[leafLimit] = s
	}
	p.mu.Unlock()
	s.once.Do(func() {
		s.val = bdd.Build(p.g, leafLimit, s.led)
		p.build.MergeAs(s.led, ledger.Build)
		led.MergeAs(s.led, ledger.Build)
	})
	return s.val
}

// DualLabels returns the dual distance labeling for (kind, leafLimit),
// building the BDD and labeling on first use. A labeling with NegCycle set
// is cached and returned as-is; callers decide how to report it.
func (p *Prepared) DualLabels(kind LengthKind, leafLimit int, led *ledger.Ledger) *duallabel.Labeling {
	leafLimit = p.ResolveLeafLimit(leafLimit)
	key := labelKey{kind, leafLimit}
	p.mu.Lock()
	s, ok := p.duals[key]
	if !ok {
		s = &slot[*duallabel.Labeling]{led: ledger.New()}
		p.duals[key] = s
	}
	p.mu.Unlock()
	s.once.Do(func() {
		// The tree slot accounts its own (possible) construction against the
		// caller's ledger and the cumulative build ledger; this slot's ledger
		// holds only the labeling-computation cost.
		tree := p.Tree(leafLimit, led)
		s.val = duallabel.Compute(tree, Lengths(p.g, kind), s.led)
		p.build.MergeAs(s.led, ledger.Build)
		led.MergeAs(s.led, ledger.Build)
	})
	return s.val
}

// PrimalLabels returns the primal distance labeling for (kind, leafLimit),
// building the BDD and labeling on first use.
func (p *Prepared) PrimalLabels(kind LengthKind, leafLimit int, led *ledger.Ledger) *primallabel.Labeling {
	leafLimit = p.ResolveLeafLimit(leafLimit)
	key := labelKey{kind, leafLimit}
	p.mu.Lock()
	s, ok := p.primals[key]
	if !ok {
		s = &slot[*primallabel.Labeling]{led: ledger.New()}
		p.primals[key] = s
	}
	p.mu.Unlock()
	s.once.Do(func() {
		tree := p.Tree(leafLimit, led)
		s.val = primallabel.Compute(tree, Lengths(p.g, kind), s.led)
		p.build.MergeAs(s.led, ledger.Build)
		led.MergeAs(s.led, ledger.Build)
	})
	return s.val
}

// BuildLedger returns a snapshot of the cumulative build cost of every
// substrate constructed so far (each substrate counted once, regardless of
// how many queries shared it).
func (p *Prepared) BuildLedger() *ledger.Ledger {
	snap := ledger.New()
	snap.Merge(p.build)
	return snap
}
