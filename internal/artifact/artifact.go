// Package artifact holds the prepared-graph bundle: the expensive, reusable
// substrates of the paper's algorithms — the Bounded Diameter Decomposition
// and the primal/dual distance labelings of §5 — built once per graph and
// served to many queries concurrently.
//
// The paper observes (§5) that the Õ(D)-bit distance labels "actually allow
// computation of all pairs shortest paths": once the BDD and a labeling
// exist, every further query decodes locally. Prepared realizes that split.
// Substrates are keyed by what determines them — the BDD by its leaf limit,
// a labeling by (length kind, leaf limit) — and built lazily under a
// per-slot singleflight, so concurrent queries needing the same substrate
// block on one construction and then share the immutable result.
//
// Cancellation: a Prepared carries a context (WithContext derives a
// request-scoped view over the same substrate cache). The context is
// honored at substrate-build checkpoints: a waiter whose context is
// canceled stops waiting, and a builder whose context is canceled aborts
// the half-built substrate at its next checkpoint and releases the slot, so
// an abandoned request stops paying for a build nobody wants — the next
// live request restarts it.
//
// Round accounting: each slot builds into its own ledger; that snapshot is
// merged into the triggering query's ledger with ledger.Build scope exactly
// once (by the builder), so the first query on a graph reports the full
// build cost, later queries report Build=0, and the cumulative cost of
// everything built so far is available from BuildLedger. Stats reports the
// per-substrate footprint (estimated bytes + build rounds) the serving
// layer's eviction policy consumes.
package artifact

import (
	"context"
	"sort"
	"sync"
	"time"

	"planarflow/internal/bdd"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
	"planarflow/internal/obs"
	"planarflow/internal/planar"
	"planarflow/internal/primallabel"
)

// Per-substrate build-duration histograms, resolved once. The builder of
// a slot records the wall time here and charges it to the triggering
// request's span (singleflight waiters charge nothing), mirroring the
// ledger's charge-the-builder round accounting.
var mBuild = map[string]*obs.Histogram{
	"bdd": obs.Default().Histogram("substrate_build_seconds",
		"Substrate construction wall time by kind (inclusive: a labeling built on a cold graph includes its BDD build).", obs.L("substrate", "bdd")),
	"dual-label":   obs.Default().Histogram("substrate_build_seconds", "", obs.L("substrate", "dual-label")),
	"primal-label": obs.Default().Histogram("substrate_build_seconds", "", obs.L("substrate", "primal-label")),
}

// LengthKind identifies a per-dart length function derived from the graph's
// edge weights. Together with the leaf limit it keys a cached labeling.
type LengthKind int

const (
	// Undirected charges Weight(e) to both darts of e: the length function
	// of the undirected distance oracle and of dual SSSP under "both
	// crossing directions" semantics.
	Undirected LengthKind = iota
	// Directed charges Weight(e) to the forward dart and deactivates the
	// backward dart: one-way oracle semantics, and the directed-girth
	// instance.
	Directed
	// FreeReversal charges Weight(e) forward and 0 backward: the dual
	// length function of directed global minimum cut (§7), where crossing
	// an edge against its direction is free.
	FreeReversal
)

func (k LengthKind) String() string {
	switch k {
	case Undirected:
		return "undirected"
	case Directed:
		return "directed"
	case FreeReversal:
		return "free-reversal"
	default:
		return "unknown"
	}
}

// Lengths materializes the per-dart length vector of a kind for g. The
// Undirected and Directed kinds are duallabel.UniformLengths' two modes;
// delegating keeps a single definition of the dart-length convention.
func Lengths(g *planar.Graph, kind LengthKind) []int64 {
	if kind != FreeReversal {
		return duallabel.UniformLengths(g, kind == Directed)
	}
	lens := make([]int64, g.NumDarts())
	for e := 0; e < g.M(); e++ {
		lens[planar.ForwardDart(e)] = g.Edge(e).Weight
		lens[planar.BackwardDart(e)] = 0
	}
	return lens
}

// labelKey identifies one cached labeling.
type labelKey struct {
	kind      LengthKind
	leafLimit int
}

// slot is one lazily-built substrate under singleflight: at most one
// builder runs at a time; waiters block on inflight (or their context) and
// re-check. A canceled builder leaves the slot empty for the next caller.
type slot[T any] struct {
	val      T
	ready    bool
	inflight chan struct{}  // non-nil while a build is running
	led      *ledger.Ledger // build cost of the published value
	bytes    int64          // footprint estimate of the published value
}

// state is the substrate cache shared by every context-bound view of one
// prepared graph.
type state struct {
	g *planar.Graph

	mu      sync.Mutex
	trees   map[int]*slot[*bdd.BDD]
	duals   map[labelKey]*slot[*duallabel.Labeling]
	primals map[labelKey]*slot[*primallabel.Labeling]

	build *ledger.Ledger // cumulative build cost of every substrate built

	// defaultLeaf caches bdd.DefaultLeafLimit(g), which costs two BFS
	// traversals — deterministic per graph, and on every query's path via
	// ResolveLeafLimit, so it must not be recomputed per query.
	defaultLeafOnce sync.Once
	defaultLeaf     int
}

// Prepared is the reusable artifact bundle of one embedded graph: a
// request context over the shared substrate cache. Safe for concurrent
// use; all substrates are immutable once built.
type Prepared struct {
	ctx context.Context
	st  *state
}

// New wraps g in an empty prepared bundle bound to the background context;
// nothing is built until queried.
func New(g *planar.Graph) *Prepared {
	return &Prepared{
		ctx: context.Background(),
		st: &state{
			g:       g,
			trees:   map[int]*slot[*bdd.BDD]{},
			duals:   map[labelKey]*slot[*duallabel.Labeling]{},
			primals: map[labelKey]*slot[*primallabel.Labeling]{},
			build:   ledger.New(),
		},
	}
}

// WithContext returns a view over the same substrate cache whose builds
// and waits are canceled with ctx. Substrates built through any view are
// shared by all views.
func (p *Prepared) WithContext(ctx context.Context) *Prepared {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Prepared{ctx: ctx, st: p.st}
}

// Context returns the context this view is bound to.
func (p *Prepared) Context() context.Context { return p.ctx }

// Graph returns the underlying embedded graph.
func (p *Prepared) Graph() *planar.Graph { return p.st.g }

// ResolveLeafLimit normalizes a leaf-limit request the way bdd.Build does
// (0 means the paper's Θ(D log n) default), so equal requests share a slot.
func (p *Prepared) ResolveLeafLimit(leafLimit int) int {
	if leafLimit == 0 {
		p.st.defaultLeafOnce.Do(func() {
			p.st.defaultLeaf = bdd.DefaultLeafLimit(p.st.g)
		})
		leafLimit = p.st.defaultLeaf
	}
	if leafLimit < 4 {
		leafLimit = 4
	}
	return leafLimit
}

// get runs the slot singleflight: return the published value, or join the
// inflight build, or become the builder. build constructs the value into
// the supplied slot ledger; errors (cancellation) leave the slot empty so
// a later live request restarts the build.
func get[T any](p *Prepared, s *slot[T], kind string,
	build func(ctx context.Context, led *ledger.Ledger) (T, int64, error)) (T, *ledger.Ledger, bool, error) {
	mu := &p.st.mu
	var zero T
	for {
		mu.Lock()
		if s.ready {
			v, led := s.val, s.led
			mu.Unlock()
			return v, led, false, nil
		}
		if ch := s.inflight; ch != nil {
			mu.Unlock()
			select {
			case <-ch:
				continue // build finished or aborted: re-check
			case <-p.ctx.Done():
				return zero, nil, false, p.ctx.Err()
			}
		}
		if err := p.ctx.Err(); err != nil {
			mu.Unlock()
			return zero, nil, false, err
		}
		ch := make(chan struct{})
		s.inflight = ch
		mu.Unlock()

		v, led, err := runBuild(p, s, ch, kind, build)
		if err != nil {
			return zero, nil, false, err
		}
		return v, led, true, nil
	}
}

// runBuild executes the builder's critical section. The slot release and
// waiter wakeup run in a defer so that a panicking substrate builder (a
// degenerate generated graph, say) cannot leave the inflight channel
// unclosed and hang every later query for the slot — the panic
// propagates, the slot empties, and the next caller rebuilds.
func runBuild[T any](p *Prepared, s *slot[T], ch chan struct{}, kind string,
	build func(ctx context.Context, led *ledger.Ledger) (T, int64, error)) (v T, led *ledger.Ledger, err error) {
	led = ledger.New()
	var bytes int64
	completed := false
	defer func() {
		p.st.mu.Lock()
		s.inflight = nil
		if completed && err == nil {
			s.val, s.led, s.bytes, s.ready = v, led, bytes, true
		}
		close(ch)
		p.st.mu.Unlock()
	}()
	sp := obs.SpanFromContext(p.ctx)
	nested := sp.PhaseNS(obs.PhaseBuild)
	t0 := time.Now()
	v, bytes, err = build(p.ctx, led)
	completed = true
	if err == nil {
		d := time.Since(t0)
		if h := mBuild[kind]; h != nil {
			// Histogram wall is inclusive: a labeling built on a cold graph
			// includes its BDD construction (see the metric help).
			h.Observe(d)
		}
		// Span charge is exclusive: a nested build (the BDD under a labeling)
		// already charged its own wall through its own runBuild, so only the
		// increment beyond what the span accumulated during this build counts.
		if inner := sp.PhaseNS(obs.PhaseBuild) - nested; d.Nanoseconds() > inner {
			sp.Add(obs.PhaseBuild, d-time.Duration(inner))
		}
	}
	return v, led, err
}

// Tree returns the BDD for the given leaf limit, building it on first use.
// The build cost is charged to led (Build scope) by whichever call triggers
// construction; cache hits charge nothing. The only possible error is the
// view context's cancellation.
func (p *Prepared) Tree(leafLimit int, led *ledger.Ledger) (*bdd.BDD, error) {
	leafLimit = p.ResolveLeafLimit(leafLimit)
	p.st.mu.Lock()
	s, ok := p.st.trees[leafLimit]
	if !ok {
		s = &slot[*bdd.BDD]{}
		p.st.trees[leafLimit] = s
	}
	p.st.mu.Unlock()
	v, slotLed, built, err := get(p, s, "bdd",
		func(ctx context.Context, bled *ledger.Ledger) (*bdd.BDD, int64, error) {
			t, err := bdd.BuildContext(ctx, p.st.g, leafLimit, bled)
			if err != nil {
				return nil, 0, err
			}
			return t, t.FootprintBytes(), nil
		})
	if err != nil {
		return nil, err
	}
	if built {
		p.st.build.MergeAs(slotLed, ledger.Build)
		led.MergeAs(slotLed, ledger.Build)
	}
	return v, nil
}

// DualLabels returns the dual distance labeling for (kind, leafLimit),
// building the BDD and labeling on first use. A labeling with NegCycle set
// is cached and returned as-is; callers decide how to report it. The only
// possible error is the view context's cancellation.
func (p *Prepared) DualLabels(kind LengthKind, leafLimit int, led *ledger.Ledger) (*duallabel.Labeling, error) {
	leafLimit = p.ResolveLeafLimit(leafLimit)
	key := labelKey{kind, leafLimit}
	p.st.mu.Lock()
	s, ok := p.st.duals[key]
	if !ok {
		s = &slot[*duallabel.Labeling]{}
		p.st.duals[key] = s
	}
	p.st.mu.Unlock()
	v, slotLed, built, err := get(p, s, "dual-label",
		func(ctx context.Context, bled *ledger.Ledger) (*duallabel.Labeling, int64, error) {
			// The tree slot accounts its own (possible) construction against
			// the caller's ledger and the cumulative build ledger; this slot's
			// ledger holds only the labeling-computation cost.
			tree, err := p.Tree(leafLimit, led)
			if err != nil {
				return nil, 0, err
			}
			la, err := duallabel.ComputeContext(ctx, tree, Lengths(p.st.g, kind), bled)
			if err != nil {
				return nil, 0, err
			}
			return la, la.FootprintBytes(), nil
		})
	if err != nil {
		return nil, err
	}
	if built {
		p.st.build.MergeAs(slotLed, ledger.Build)
		led.MergeAs(slotLed, ledger.Build)
	}
	return v, nil
}

// PrimalLabels returns the primal distance labeling for (kind, leafLimit),
// building the BDD and labeling on first use. The only possible error is
// the view context's cancellation.
func (p *Prepared) PrimalLabels(kind LengthKind, leafLimit int, led *ledger.Ledger) (*primallabel.Labeling, error) {
	leafLimit = p.ResolveLeafLimit(leafLimit)
	key := labelKey{kind, leafLimit}
	p.st.mu.Lock()
	s, ok := p.st.primals[key]
	if !ok {
		s = &slot[*primallabel.Labeling]{}
		p.st.primals[key] = s
	}
	p.st.mu.Unlock()
	v, slotLed, built, err := get(p, s, "primal-label",
		func(ctx context.Context, bled *ledger.Ledger) (*primallabel.Labeling, int64, error) {
			tree, err := p.Tree(leafLimit, led)
			if err != nil {
				return nil, 0, err
			}
			la, err := primallabel.ComputeContext(ctx, tree, Lengths(p.st.g, kind), bled)
			if err != nil {
				return nil, 0, err
			}
			return la, la.FootprintBytes(), nil
		})
	if err != nil {
		return nil, err
	}
	if built {
		p.st.build.MergeAs(slotLed, ledger.Build)
		led.MergeAs(slotLed, ledger.Build)
	}
	return v, nil
}

// BuildLedger returns a snapshot of the cumulative build cost of every
// substrate constructed so far (each substrate counted once, regardless of
// how many queries shared it).
func (p *Prepared) BuildLedger() *ledger.Ledger {
	snap := ledger.New()
	snap.Merge(p.st.build)
	return snap
}

// SubstrateStats describes one built substrate: its identity and the two
// costs the serving layer budgets by — estimated resident bytes and the
// one-time construction rounds.
type SubstrateStats struct {
	Kind        string     `json:"kind"` // "bdd" | "dual-label" | "primal-label"
	Lengths     LengthKind `json:"-"`
	LengthsName string     `json:"lengths,omitempty"` // empty for the BDD
	LeafLimit   int        `json:"leaf_limit"`
	Bytes       int64      `json:"bytes"`
	BuildRounds int64      `json:"build_rounds"`
}

// Stats is a point-in-time snapshot of everything built so far.
type Stats struct {
	Substrates  []SubstrateStats `json:"substrates"`
	Bytes       int64            `json:"bytes"`        // total estimated footprint
	BuildRounds int64            `json:"build_rounds"` // total one-time cost
}

// Stats snapshots the built substrates (in-flight builds are excluded
// until they publish). The slice is ordered deterministically: BDDs by
// leaf limit, then dual and primal labelings by (kind, leaf limit).
func (p *Prepared) Stats() Stats {
	p.st.mu.Lock()
	defer p.st.mu.Unlock()
	var st Stats
	add := func(s SubstrateStats) {
		st.Substrates = append(st.Substrates, s)
		st.Bytes += s.Bytes
		st.BuildRounds += s.BuildRounds
	}
	for ll, s := range p.st.trees {
		if s.ready {
			add(SubstrateStats{Kind: "bdd", LeafLimit: ll, Bytes: s.bytes, BuildRounds: s.led.Total()})
		}
	}
	for k, s := range p.st.duals {
		if s.ready {
			add(SubstrateStats{Kind: "dual-label", Lengths: k.kind, LengthsName: k.kind.String(),
				LeafLimit: k.leafLimit, Bytes: s.bytes, BuildRounds: s.led.Total()})
		}
	}
	for k, s := range p.st.primals {
		if s.ready {
			add(SubstrateStats{Kind: "primal-label", Lengths: k.kind, LengthsName: k.kind.String(),
				LeafLimit: k.leafLimit, Bytes: s.bytes, BuildRounds: s.led.Total()})
		}
	}
	sort.Slice(st.Substrates, func(i, j int) bool {
		a, b := st.Substrates[i], st.Substrates[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Lengths != b.Lengths {
			return a.Lengths < b.Lengths
		}
		return a.LeafLimit < b.LeafLimit
	})
	return st
}
