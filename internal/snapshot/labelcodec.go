package snapshot

// Distance-labeling codec (section types 2 and 3). A labeling is stored
// per bag as its key→label map in sorted key order; each label carries
// its distance maps and a reference to its child label (the same key in
// the unique child bag wholly containing it), re-linked after all bags
// decode. Dual labelings additionally carry the retained base DDGs —
// nodes, arcs and the all-pairs matrix — whose index maps rebuild from
// the node list. Lengths vectors are never stored: they derive from the
// fingerprint-checked graph and the length kind, so the caller supplies
// them through LengthsFunc.

import (
	"fmt"
	"sort"

	"planarflow/internal/bdd"
	"planarflow/internal/duallabel"
	"planarflow/internal/planar"
	"planarflow/internal/primallabel"
)

// DualEntry is one dual-labeling substrate: the labeling, its artifact
// key (length kind byte + leaf limit), and its original build cost.
type DualEntry struct {
	Kind        byte
	LeafLimit   int
	BuildRounds int64
	Labeling    *duallabel.Labeling
}

// PrimalEntry is one primal-labeling substrate.
type PrimalEntry struct {
	Kind        byte
	LeafLimit   int
	BuildRounds int64
	Labeling    *primallabel.Labeling
}

// label flag bits.
const (
	flagLeaf  = 1 // LeafTo/LeafFrom present (leaf-bag label)
	flagChild = 2 // label has a child in a child bag
)

// encodeDistMap writes a key→distance map in sorted key order.
func encodeDistMap(e *enc, m map[int]int64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	e.count(len(keys))
	prev := 0
	for _, k := range keys {
		e.varint(int64(k - prev))
		prev = k
		e.varint(m[k])
	}
}

func decodeDistMap(d *dec, limit int) (map[int]int64, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	m := make(map[int]int64, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		dk, err := d.varint()
		if err != nil {
			return nil, err
		}
		prev += dk
		if prev < 0 || prev >= int64(limit) {
			return nil, fmt.Errorf("%w: map key %d out of [0,%d)", ErrCorrupt, prev, limit)
		}
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		m[int(prev)] = v
	}
	return m, nil
}

// labelWire is the codec-neutral view of one label: both labeling
// families share the same shape (a key, four maps, an optional child).
type labelWire struct {
	key              int
	leaf             bool
	childBag         int // -1 = none
	to, from         map[int]int64
	leafTo, leafFrom map[int]int64
}

func encodeLabelMaps(e *enc, w labelWire) {
	var flags byte
	if w.leaf {
		flags |= flagLeaf
	}
	if w.childBag >= 0 {
		flags |= flagChild
	}
	e.byte(flags)
	if w.childBag >= 0 {
		e.id(w.childBag)
	}
	if w.leaf {
		encodeDistMap(e, w.leafTo)
		encodeDistMap(e, w.leafFrom)
	} else {
		encodeDistMap(e, w.to)
		encodeDistMap(e, w.from)
	}
}

func decodeLabelMaps(d *dec, key, numBags, keyLimit int) (labelWire, error) {
	w := labelWire{key: key, childBag: -1}
	flags, err := d.byte()
	if err != nil {
		return w, err
	}
	if flags&^(flagLeaf|flagChild) != 0 || flags == flagLeaf|flagChild {
		return w, fmt.Errorf("%w: label flags %#x", ErrCorrupt, flags)
	}
	w.leaf = flags&flagLeaf != 0
	if flags&flagChild != 0 {
		if w.childBag, err = d.id(numBags); err != nil {
			return w, err
		}
	}
	if w.leaf {
		if w.leafTo, err = decodeDistMap(d, keyLimit); err != nil {
			return w, err
		}
		if w.leafFrom, err = decodeDistMap(d, keyLimit); err != nil {
			return w, err
		}
	} else {
		if w.to, err = decodeDistMap(d, keyLimit); err != nil {
			return w, err
		}
		if w.from, err = decodeDistMap(d, keyLimit); err != nil {
			return w, err
		}
	}
	return w, nil
}

// sortedKeys returns the map's keys ascending (deterministic encode order).
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// treeFor resolves the tree a labeling section decodes over: it must
// have arrived in the same snapshot (labelings always travel with their
// tree; Export guarantees it, Decode enforces it).
func treeFor(c *Contents, leafLimit int) (*TreeEntry, error) {
	for i := range c.Trees {
		if c.Trees[i].LeafLimit == leafLimit {
			return &c.Trees[i], nil
		}
	}
	return nil, fmt.Errorf("%w: labeling references missing tree (leaf limit %d)", ErrCorrupt, leafLimit)
}

func encodeDual(e *enc, g *planar.Graph, la *DualEntry) error {
	e.byte(la.Kind)
	e.uvarint(uint64(la.LeafLimit))
	e.varint(la.BuildRounds)
	e.bool(la.Labeling.NegCycle)
	byBag, ddgs := la.Labeling.State()
	e.count(len(byBag))
	for _, labels := range byBag {
		e.bool(labels != nil)
		if labels == nil {
			continue
		}
		e.count(len(labels))
		for _, f := range sortedKeys(labels) {
			l := labels[f]
			e.id(f)
			childBag := -1
			if l.Child != nil {
				childBag = l.Child.Bag.ID
			}
			encodeLabelMaps(e, labelWire{
				key: f, leaf: l.LeafTo != nil, childBag: childBag,
				to: l.To, from: l.From, leafTo: l.LeafTo, leafFrom: l.LeafFrom,
			})
		}
	}
	for _, ddg := range ddgs {
		e.bool(ddg != nil)
		if ddg == nil {
			continue
		}
		e.count(len(ddg.Nodes))
		for _, n := range ddg.Nodes {
			e.byte(byte(n.Child))
			e.id(n.Face)
		}
		e.count(len(ddg.Arcs))
		for _, a := range ddg.Arcs {
			e.id(a.From)
			e.id(a.To)
			e.varint(a.Len)
			e.varint(int64(a.Dart))
		}
		for _, row := range ddg.Dist {
			if len(row) != len(ddg.Nodes) {
				return fmt.Errorf("snapshot: encode: ragged DDG distance matrix")
			}
			for _, v := range row {
				e.varint(v)
			}
		}
	}
	return nil
}

func decodeDual(d *dec, g *planar.Graph, c *Contents, lengths LengthsFunc) (*DualEntry, error) {
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	leafLimit, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	buildRounds, err := d.varint()
	if err != nil {
		return nil, err
	}
	negCycle, err := d.bool()
	if err != nil {
		return nil, err
	}
	te, err := treeFor(c, int(leafLimit))
	if err != nil {
		return nil, err
	}
	t := te.Tree
	for i := range c.Duals {
		if c.Duals[i].Kind == kind && c.Duals[i].LeafLimit == int(leafLimit) {
			return nil, fmt.Errorf("%w: duplicate dual-labeling section", ErrCorrupt)
		}
	}
	nf := g.Faces().NumFaces()
	wires, err := decodeBags(d, len(t.Bags), nf)
	if err != nil {
		return nil, err
	}
	labels := make([]map[int]*duallabel.Label, len(t.Bags))
	for i, bagWires := range wires {
		if bagWires == nil {
			continue
		}
		m := make(map[int]*duallabel.Label, len(bagWires))
		for _, w := range bagWires {
			l := &duallabel.Label{Bag: t.Bags[i], Face: w.key}
			if w.leaf {
				l.LeafTo, l.LeafFrom = w.leafTo, w.leafFrom
			} else {
				l.To, l.From = w.to, w.from
			}
			m[w.key] = l
		}
		labels[i] = m
	}
	// Re-link child labels now that every bag's map exists.
	for i, bagWires := range wires {
		for _, w := range bagWires {
			if w.childBag < 0 {
				continue
			}
			if !childOf(t.Bags[i], w.childBag) {
				return nil, fmt.Errorf("%w: label child bag %d not a child of bag %d", ErrCorrupt, w.childBag, i)
			}
			child := labels[w.childBag][w.key]
			if child == nil {
				return nil, fmt.Errorf("%w: label %d/%d references missing child label", ErrCorrupt, i, w.key)
			}
			labels[i][w.key].Child = child
		}
	}
	// DDGs, one presence flag per bag.
	ddgs := make([]*duallabel.BagDDG, len(t.Bags))
	for i := range t.Bags {
		present, err := d.bool()
		if err != nil {
			return nil, err
		}
		if !present {
			continue
		}
		ddg := &duallabel.BagDDG{
			Bag:    t.Bags[i],
			Index:  make(map[duallabel.DDGNode]int),
			RepsOf: make(map[int][]int),
		}
		nn, err := d.count()
		if err != nil {
			return nil, err
		}
		for j := 0; j < nn; j++ {
			ci, err := d.byte()
			if err != nil {
				return nil, err
			}
			if ci > 1 {
				return nil, fmt.Errorf("%w: DDG node child %d", ErrCorrupt, ci)
			}
			f, err := d.id(nf)
			if err != nil {
				return nil, err
			}
			n := duallabel.DDGNode{Child: int(ci), Face: f}
			if _, dup := ddg.Index[n]; dup {
				return nil, fmt.Errorf("%w: duplicate DDG node", ErrCorrupt)
			}
			ddg.Index[n] = j
			ddg.RepsOf[f] = append(ddg.RepsOf[f], j)
			ddg.Nodes = append(ddg.Nodes, n)
		}
		na, err := d.count()
		if err != nil {
			return nil, err
		}
		ddg.Arcs = make([]duallabel.DDGArc, 0, na)
		for j := 0; j < na; j++ {
			var a duallabel.DDGArc
			if a.From, err = d.id(nn); err != nil {
				return nil, err
			}
			if a.To, err = d.id(nn); err != nil {
				return nil, err
			}
			if a.Len, err = d.varint(); err != nil {
				return nil, err
			}
			dart, err := d.varint()
			if err != nil {
				return nil, err
			}
			if dart < -1 || dart >= int64(g.NumDarts()) {
				return nil, fmt.Errorf("%w: DDG arc dart %d", ErrCorrupt, dart)
			}
			a.Dart = planar.Dart(dart)
			ddg.Arcs = append(ddg.Arcs, a)
		}
		ddg.Dist = make([][]int64, nn)
		for r := 0; r < nn; r++ {
			row := make([]int64, nn)
			for cIdx := 0; cIdx < nn; cIdx++ {
				if row[cIdx], err = d.varint(); err != nil {
					return nil, err
				}
			}
			ddg.Dist[r] = row
		}
		ddgs[i] = ddg
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in dual section", ErrCorrupt, d.remaining())
	}
	lens, err := lengths(kind)
	if err != nil {
		return nil, err
	}
	return &DualEntry{
		Kind: kind, LeafLimit: int(leafLimit), BuildRounds: buildRounds,
		Labeling: duallabel.FromState(t, lens, negCycle, labels, ddgs),
	}, nil
}

func encodePrimal(e *enc, g *planar.Graph, la *PrimalEntry) {
	e.byte(la.Kind)
	e.uvarint(uint64(la.LeafLimit))
	e.varint(la.BuildRounds)
	e.bool(la.Labeling.NegCycle)
	byBag := la.Labeling.State()
	e.count(len(byBag))
	for _, labels := range byBag {
		e.bool(labels != nil)
		if labels == nil {
			continue
		}
		e.count(len(labels))
		for _, v := range sortedKeys(labels) {
			l := labels[v]
			e.id(v)
			childBag := -1
			if l.Child != nil {
				childBag = l.Child.Bag.ID
			}
			encodeLabelMaps(e, labelWire{
				key: v, leaf: l.LeafTo != nil, childBag: childBag,
				to: l.To, from: l.From, leafTo: l.LeafTo, leafFrom: l.LeafFrom,
			})
		}
	}
}

func decodePrimal(d *dec, g *planar.Graph, c *Contents, lengths LengthsFunc) (*PrimalEntry, error) {
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	leafLimit, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	buildRounds, err := d.varint()
	if err != nil {
		return nil, err
	}
	negCycle, err := d.bool()
	if err != nil {
		return nil, err
	}
	te, err := treeFor(c, int(leafLimit))
	if err != nil {
		return nil, err
	}
	t := te.Tree
	for i := range c.Primals {
		if c.Primals[i].Kind == kind && c.Primals[i].LeafLimit == int(leafLimit) {
			return nil, fmt.Errorf("%w: duplicate primal-labeling section", ErrCorrupt)
		}
	}
	wires, err := decodeBags(d, len(t.Bags), g.N())
	if err != nil {
		return nil, err
	}
	labels := make([]map[int]*primallabel.Label, len(t.Bags))
	for i, bagWires := range wires {
		if bagWires == nil {
			continue
		}
		m := make(map[int]*primallabel.Label, len(bagWires))
		for _, w := range bagWires {
			l := &primallabel.Label{Bag: t.Bags[i], Vertex: w.key}
			if w.leaf {
				l.LeafTo, l.LeafFrom = w.leafTo, w.leafFrom
			} else {
				l.To, l.From = w.to, w.from
			}
			m[w.key] = l
		}
		labels[i] = m
	}
	for i, bagWires := range wires {
		for _, w := range bagWires {
			if w.childBag < 0 {
				continue
			}
			if !childOf(t.Bags[i], w.childBag) {
				return nil, fmt.Errorf("%w: label child bag %d not a child of bag %d", ErrCorrupt, w.childBag, i)
			}
			child := labels[w.childBag][w.key]
			if child == nil {
				return nil, fmt.Errorf("%w: label %d/%d references missing child label", ErrCorrupt, i, w.key)
			}
			labels[i][w.key].Child = child
		}
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in primal section", ErrCorrupt, d.remaining())
	}
	lens, err := lengths(kind)
	if err != nil {
		return nil, err
	}
	return &PrimalEntry{
		Kind: kind, LeafLimit: int(leafLimit), BuildRounds: buildRounds,
		Labeling: primallabel.FromState(t, lens, negCycle, labels),
	}, nil
}

// decodeBags reads the shared per-bag label-map layout: a presence flag
// per bag, then the sorted key→label entries. The returned wires slice
// is indexed by bag; nil entries mean the bag had no labels (a labeling
// aborted by a negative cycle).
func decodeBags(d *dec, numBags, keyLimit int) ([][]labelWire, error) {
	nb, err := d.count()
	if err != nil {
		return nil, err
	}
	if nb != numBags {
		return nil, fmt.Errorf("%w: labeling spans %d bags, tree has %d", ErrCorrupt, nb, numBags)
	}
	wires := make([][]labelWire, numBags)
	for i := 0; i < numBags; i++ {
		p, err := d.bool()
		if err != nil {
			return nil, err
		}
		if !p {
			continue
		}
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		bagWires := make([]labelWire, 0, n)
		seen := make(map[int]bool, n)
		for j := 0; j < n; j++ {
			key, err := d.id(keyLimit)
			if err != nil {
				return nil, err
			}
			if seen[key] {
				return nil, fmt.Errorf("%w: duplicate label key %d in bag %d", ErrCorrupt, key, i)
			}
			seen[key] = true
			w, err := decodeLabelMaps(d, key, numBags, keyLimit)
			if err != nil {
				return nil, err
			}
			bagWires = append(bagWires, w)
		}
		wires[i] = bagWires
	}
	return wires, nil
}

// childOf reports whether childID is one of b's children.
func childOf(b *bdd.Bag, childID int) bool {
	for _, c := range b.Children {
		if c.ID == childID {
			return true
		}
	}
	return false
}
