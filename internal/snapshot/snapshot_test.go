package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"planarflow/internal/bdd"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/primallabel"
	"planarflow/internal/spath"
)

// testGraph is the fixture graph of this package: a weighted 5x6 grid,
// deterministic by seed.
func testGraph(t testing.TB) *planar.Graph {
	t.Helper()
	rng := planar.NewRand(7)
	return planar.WithRandomWeights(planar.Grid(5, 6), rng, 1, 9, 1, 16)
}

// undirected / directed per-dart lengths, mirroring artifact.Lengths.
func lengthsFor(g *planar.Graph) LengthsFunc {
	return func(kind byte) ([]int64, error) {
		switch kind {
		case 0:
			return duallabel.UniformLengths(g, false), nil
		case 1:
			return duallabel.UniformLengths(g, true), nil
		case 2:
			lens := make([]int64, g.NumDarts())
			for e := 0; e < g.M(); e++ {
				lens[planar.ForwardDart(e)] = g.Edge(e).Weight
				lens[planar.BackwardDart(e)] = 0
			}
			return lens, nil
		default:
			return nil, fmt.Errorf("%w: unknown length kind %d", ErrCorrupt, kind)
		}
	}
}

// buildContents constructs one tree plus a dual and a primal labeling
// over it — the three substrate families of one snapshot.
func buildContents(t testing.TB, g *planar.Graph) *Contents {
	t.Helper()
	led := ledger.New()
	tree := bdd.Build(g, 16, led)
	lf := lengthsFor(g)
	undirected, _ := lf(0)
	dl := duallabel.Compute(tree, undirected, ledger.New())
	if dl.NegCycle {
		t.Fatal("unexpected negative cycle")
	}
	pl := primallabel.Compute(tree, undirected, ledger.New())
	if pl.NegCycle {
		t.Fatal("unexpected negative cycle")
	}
	return &Contents{
		Trees:   []TreeEntry{{LeafLimit: 16, BuildRounds: led.Total(), Tree: tree}},
		Duals:   []DualEntry{{Kind: 0, LeafLimit: 16, BuildRounds: 11, Labeling: dl}},
		Primals: []PrimalEntry{{Kind: 0, LeafLimit: 16, BuildRounds: 22, Labeling: pl}},
	}
}

func encodeAll(t testing.TB, g *planar.Graph, c *Contents) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, g, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	g := testGraph(t)
	c := buildContents(t, g)
	data := encodeAll(t, g, c)

	got, err := Decode(bytes.NewReader(data), g, lengthsFor(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trees) != 1 || len(got.Duals) != 1 || len(got.Primals) != 1 {
		t.Fatalf("decoded %d/%d/%d sections", len(got.Trees), len(got.Duals), len(got.Primals))
	}
	if got.Trees[0].BuildRounds != c.Trees[0].BuildRounds ||
		got.Duals[0].BuildRounds != 11 || got.Primals[0].BuildRounds != 22 {
		t.Fatal("build rounds did not round-trip")
	}

	// Structural identity of the tree.
	want, have := c.Trees[0].Tree, got.Trees[0].Tree
	if len(want.Bags) != len(have.Bags) || want.Depth != have.Depth || want.LeafLimit != have.LeafLimit {
		t.Fatalf("tree shape mismatch: %d/%d bags", len(want.Bags), len(have.Bags))
	}
	for i := range want.Bags {
		wb, hb := want.Bags[i], have.Bags[i]
		if len(wb.Darts) != len(hb.Darts) || wb.Level != hb.Level || wb.TreeDepth != hb.TreeDepth {
			t.Fatalf("bag %d mismatch", i)
		}
		for j := range wb.Darts {
			if wb.Darts[j] != hb.Darts[j] {
				t.Fatalf("bag %d dart order mismatch", i)
			}
		}
		if len(wb.Faces) != len(hb.Faces) {
			t.Fatalf("bag %d faces mismatch", i)
		}
		for j := range wb.Faces {
			if wb.Faces[j] != hb.Faces[j] {
				t.Fatalf("bag %d face order mismatch", i)
			}
		}
		if (wb.Sep == nil) != (hb.Sep == nil) {
			t.Fatalf("bag %d separator presence mismatch", i)
		}
		if wb.Sep != nil {
			for d := range wb.Sep.Side {
				if wb.Sep.Side[d] != hb.Sep.Side[d] {
					t.Fatalf("bag %d side[%d] = %d, want %d", i, d, hb.Sep.Side[d], wb.Sep.Side[d])
				}
			}
		}
	}

	// Answer identity: all-pairs primal and dual distances agree.
	wantP, haveP := c.Primals[0].Labeling, got.Primals[0].Labeling
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if wantP.Dist(u, v) != haveP.Dist(u, v) {
				t.Fatalf("primal dist(%d,%d) = %d, want %d", u, v, haveP.Dist(u, v), wantP.Dist(u, v))
			}
		}
	}
	nf := g.Faces().NumFaces()
	wantD, haveD := c.Duals[0].Labeling, got.Duals[0].Labeling
	for f1 := 0; f1 < nf; f1++ {
		for f2 := 0; f2 < nf; f2++ {
			if wantD.Dist(f1, f2) != haveD.Dist(f1, f2) {
				t.Fatalf("dual dist(%d,%d) mismatch", f1, f2)
			}
		}
	}
	// Dual SSSP exercises label Words and the tree depth accounting.
	for _, src := range []int{0, nf / 2, nf - 1} {
		a := wantD.SSSP(src, ledger.New())
		b := haveD.SSSP(src, ledger.New())
		for f := range a.Dist {
			if a.Dist[f] != b.Dist[f] || a.TreeDart[f] != b.TreeDart[f] {
				t.Fatalf("dual SSSP from %d diverges at face %d", src, f)
			}
		}
	}
	// Retained DDGs round-trip (the global-min-cut route reads them).
	wd, wddg := wantD.State()
	hd, hddg := haveD.State()
	_ = wd
	_ = hd
	for i := range wddg {
		if (wddg[i] == nil) != (hddg[i] == nil) {
			t.Fatalf("ddg presence mismatch at bag %d", i)
		}
		if wddg[i] == nil {
			continue
		}
		if len(wddg[i].Nodes) != len(hddg[i].Nodes) || len(wddg[i].Arcs) != len(hddg[i].Arcs) {
			t.Fatalf("ddg shape mismatch at bag %d", i)
		}
		for r := range wddg[i].Dist {
			for c2 := range wddg[i].Dist[r] {
				if wddg[i].Dist[r][c2] != hddg[i].Dist[r][c2] {
					t.Fatalf("ddg dist mismatch at bag %d", i)
				}
			}
		}
	}

	// The decisive determinism check: re-encoding the decoded contents
	// reproduces the input byte-for-byte.
	data2 := encodeAll(t, g, got)
	if !bytes.Equal(data, data2) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(data), len(data2))
	}
}

func TestEncodeDeterministic(t *testing.T) {
	g := testGraph(t)
	c := buildContents(t, g)
	a := encodeAll(t, g, c)
	b := encodeAll(t, g, c)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodes of the same state differ")
	}
	// An independent rebuild of the same substrates must also encode
	// identically (build determinism feeding codec determinism).
	c2 := buildContents(t, testGraph(t))
	if !bytes.Equal(a, encodeAll(t, testGraph(t), c2)) {
		t.Fatal("independent rebuild encodes differently")
	}
}

func TestDecodeErrors(t *testing.T) {
	g := testGraph(t)
	data := encodeAll(t, g, buildContents(t, g))
	lf := lengthsFor(g)

	t.Run("magic", func(t *testing.T) {
		bad := append([]byte("NOTASNAP"), data[8:]...)
		if _, err := Decode(bytes.NewReader(bad), g, lf); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[6] = Version + 1
		if _, err := Decode(bytes.NewReader(bad), g, lf); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})
	t.Run("fingerprint", func(t *testing.T) {
		other := planar.WithRandomWeights(planar.Grid(5, 6), planar.NewRand(8), 1, 9, 1, 16)
		if _, err := Decode(bytes.NewReader(data), other, lengthsFor(other)); !errors.Is(err, ErrFingerprint) {
			t.Fatalf("got %v, want ErrFingerprint", err)
		}
	})
	t.Run("checksum", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(bad)/2] ^= 0x40 // flip a payload bit
		_, err := Decode(bytes.NewReader(bad), g, lf)
		if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want a typed decode error", err)
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{0, 3, 7, 14, 15, 16, len(data) / 3, len(data) - 5, len(data) - 1} {
			_, err := Decode(bytes.NewReader(data[:cut]), g, lf)
			if err == nil {
				t.Fatalf("truncation at %d decoded successfully", cut)
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) {
				t.Fatalf("truncation at %d: got %v, want typed error", cut, err)
			}
		}
	})
	t.Run("trailing", func(t *testing.T) {
		bad := append(append([]byte(nil), data...), 0xff)
		if _, err := Decode(bytes.NewReader(bad), g, lf); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(bytes.NewReader(nil), g, lf); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
}

// TestEmptySnapshot pins that zero substrates is a valid snapshot.
func TestEmptySnapshot(t *testing.T) {
	g := testGraph(t)
	data := encodeAll(t, g, &Contents{})
	c, err := Decode(bytes.NewReader(data), g, lengthsFor(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Trees)+len(c.Duals)+len(c.Primals) != 0 {
		t.Fatal("empty snapshot decoded substrates")
	}
}

// TestNegCycleLabeling pins the partial-labeling path: a labeling that
// aborted on a negative cycle still round-trips (some bags lack labels).
func TestNegCycleLabeling(t *testing.T) {
	g := planar.Grid(4, 4)
	// A negative undirected length function guarantees a negative cycle in
	// the dual (every face cycle has negative length).
	lens := make([]int64, g.NumDarts())
	for d := range lens {
		lens[d] = -1
	}
	led := ledger.New()
	tree := bdd.Build(g, 8, led)
	dl := duallabel.Compute(tree, lens, ledger.New())
	if !dl.NegCycle {
		t.Skip("fixture did not produce a negative cycle")
	}
	c := &Contents{
		Trees: []TreeEntry{{LeafLimit: 8, BuildRounds: led.Total(), Tree: tree}},
		Duals: []DualEntry{{Kind: 9, LeafLimit: 8, BuildRounds: 1, Labeling: dl}},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, g, c); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()), g, func(kind byte) ([]int64, error) {
		if kind != 9 {
			t.Fatalf("unexpected kind %d", kind)
		}
		return lens, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Duals[0].Labeling.NegCycle {
		t.Fatal("NegCycle flag lost")
	}
	if got.Duals[0].Labeling.Dist(0, 1) != spath.Inf {
		t.Fatal("neg-cycle labeling must report Inf")
	}
}
