// Package snapshot is the persistence layer under the prepared-graph
// artifact: a versioned, checksummed, deterministic binary codec for the
// three substrate families — the Bounded Diameter Decomposition
// (internal/bdd) and the primal/dual distance labelings
// (internal/primallabel, internal/duallabel) — so that substrates built
// once in Õ(D²) simulated rounds can be written to disk, shipped between
// machines, and restored at decode speed instead of rebuilt.
//
// Format (all integers varint-encoded unless sized):
//
//	header   magic "PFSNAP" | u8 version | u64 fingerprint | uvarint nsec
//	section  u8 type | uvarint payloadLen | payload | u32 CRC32(payload)
//	...exactly nsec sections, then EOF (trailing bytes are an error)
//
// Section types: 1 = BDD tree (keyed by leaf limit), 2 = dual labeling,
// 3 = primal labeling (both keyed by length kind + leaf limit). The
// fingerprint binds a snapshot to the exact embedded graph it was encoded
// against (vertices, edges with weights/capacities, rotation system);
// substrates are positional into the graph's dart/face/vertex spaces, so
// restoring against any other graph would silently corrupt answers — the
// fingerprint check turns that into ErrFingerprint.
//
// Every failure mode is a typed sentinel: ErrBadMagic / ErrVersion for
// foreign or future files, ErrFingerprint for the wrong graph,
// ErrChecksum for bit rot, ErrTruncated for short reads, ErrCorrupt for
// structurally invalid payloads (ids out of range, counts exceeding the
// remaining bytes). Decoding never panics, whatever the input — the fuzz
// harness holds it to that.
//
// Determinism: encoding the same built substrates always produces the
// same bytes. Map-shaped state is written in sorted key order, slices in
// stored order (the builders produce deterministic slices), and the
// committed golden fixture pins the byte stability of version 1.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"

	"planarflow/internal/planar"
)

// Version is the current format version. Decoders reject anything newer;
// older versions are decodable for as long as their section codecs are
// kept (version 1 is the first).
const Version = 1

var magic = [6]byte{'P', 'F', 'S', 'N', 'A', 'P'}

// Typed sentinel errors. Decode failures wrap exactly one of these.
var (
	// ErrBadMagic reports input that is not a planarflow snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion reports a format version this build cannot decode.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrFingerprint reports a snapshot encoded against a different graph.
	ErrFingerprint = errors.New("snapshot: graph fingerprint mismatch")
	// ErrChecksum reports a section whose CRC does not match its payload.
	ErrChecksum = errors.New("snapshot: section checksum mismatch")
	// ErrTruncated reports input that ends before the declared structure.
	ErrTruncated = errors.New("snapshot: truncated input")
	// ErrCorrupt reports a structurally invalid payload (out-of-range ids,
	// impossible counts, trailing garbage).
	ErrCorrupt = errors.New("snapshot: corrupt payload")
)

// Section type tags.
const (
	secTree    = 1
	secDual    = 2
	secPrimal  = 3
	maxSecType = 3
)

// Fingerprint hashes everything that determines a substrate's meaning:
// vertex count, the edge list with weights and capacities, and the
// rotation system (the embedding). Two graphs with equal fingerprints are
// byte-identical inputs to every builder, so substrates transfer exactly.
func Fingerprint(g *planar.Graph) uint64 {
	h := fnv.New64a()
	var buf [binary.MaxVarintLen64]byte
	wi := func(x int64) {
		n := binary.PutVarint(buf[:], x)
		h.Write(buf[:n])
	}
	wi(int64(g.N()))
	wi(int64(g.M()))
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		wi(int64(ed.U))
		wi(int64(ed.V))
		wi(ed.Weight)
		wi(ed.Cap)
	}
	for v := 0; v < g.N(); v++ {
		rot := g.Rotation(v)
		wi(int64(len(rot)))
		for _, d := range rot {
			wi(int64(d))
		}
	}
	return h.Sum64()
}

// ---- encoder ----

// enc accumulates one section payload; varints keep small ids small and
// make the format word-size independent.
type enc struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (e *enc) uvarint(x uint64) {
	n := binary.PutUvarint(e.tmp[:], x)
	e.buf.Write(e.tmp[:n])
}

func (e *enc) varint(x int64) {
	n := binary.PutVarint(e.tmp[:], x)
	e.buf.Write(e.tmp[:n])
}

func (e *enc) count(n int) { e.uvarint(uint64(n)) }
func (e *enc) id(x int)    { e.uvarint(uint64(x)) }
func (e *enc) bool(b bool) {
	if b {
		e.buf.WriteByte(1)
	} else {
		e.buf.WriteByte(0)
	}
}
func (e *enc) byte(b byte)     { e.buf.WriteByte(b) }
func (e *enc) float(f float64) { e.uvarint(math.Float64bits(f)) }

// ints writes a slice of non-negative ids delta-encoded in stored order
// (builder slices are ascending in practice, so deltas stay one byte; a
// signed delta round-trips any order exactly).
func (e *enc) ints(xs []int) {
	e.count(len(xs))
	prev := 0
	for _, x := range xs {
		e.varint(int64(x - prev))
		prev = x
	}
}

// ---- decoder ----

// dec reads one CRC-verified section payload. Every read checks bounds;
// count reads are capped by the remaining payload length so crafted
// counts cannot force large allocations.
type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	d.off += n
	return x, nil
}

func (d *dec) varint() (int64, error) {
	x, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	d.off += n
	return x, nil
}

// count reads a collection length and rejects counts that could not
// possibly fit in the remaining bytes (each element costs >= 1 byte).
func (d *dec) count() (int, error) {
	x, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if x > uint64(d.remaining()) {
		return 0, fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrCorrupt, x, d.remaining())
	}
	return int(x), nil
}

// id reads a non-negative integer bounded by limit (exclusive).
func (d *dec) id(limit int) (int, error) {
	x, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if x >= uint64(limit) {
		return 0, fmt.Errorf("%w: id %d out of [0,%d)", ErrCorrupt, x, limit)
	}
	return int(x), nil
}

func (d *dec) bool() (bool, error) {
	b, err := d.byte()
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, fmt.Errorf("%w: bad bool %d", ErrCorrupt, b)
	}
	return b == 1, nil
}

func (d *dec) byte() (byte, error) {
	if d.off >= len(d.b) {
		return 0, fmt.Errorf("%w: payload ends early", ErrCorrupt)
	}
	b := d.b[d.off]
	d.off++
	return b, nil
}

func (d *dec) float() (float64, error) {
	x, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(x), nil
}

// ints reads a delta-encoded id slice whose elements must land in
// [0, limit).
func (d *dec) ints(limit int) ([]int, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int, n)
	prev := int64(0)
	for i := range out {
		dx, err := d.varint()
		if err != nil {
			return nil, err
		}
		prev += dx
		if prev < 0 || prev >= int64(limit) {
			return nil, fmt.Errorf("%w: id %d out of [0,%d)", ErrCorrupt, prev, limit)
		}
		out[i] = int(prev)
	}
	return out, nil
}

// ---- container ----

// Contents is the decoded (or to-be-encoded) substrate set of one graph.
// Keys follow the artifact layer: a tree by its leaf limit, a labeling by
// (length kind, leaf limit); Kind bytes are the artifact.LengthKind
// values, kept as raw bytes here so this package stays below the artifact
// layer. BuildRounds preserves each substrate's original construction
// cost so serving stats survive a restore.
type Contents struct {
	Trees   []TreeEntry
	Duals   []DualEntry
	Primals []PrimalEntry
}

// LengthsFunc materializes the per-dart length vector of a length kind —
// supplied by the caller (the artifact layer) at decode time, since
// lengths derive deterministically from the fingerprint-checked graph and
// are never stored.
type LengthsFunc func(kind byte) ([]int64, error)

// Encode writes the snapshot of g's substrates to w: header, then one
// section per substrate in deterministic order (trees by leaf limit, then
// dual and primal labelings by (kind, leaf limit) — the caller sorts).
func Encode(w io.Writer, g *planar.Graph, c *Contents) error {
	var hdr enc
	hdr.buf.Write(magic[:])
	hdr.byte(Version)
	var fp [8]byte
	binary.LittleEndian.PutUint64(fp[:], Fingerprint(g))
	hdr.buf.Write(fp[:])
	hdr.count(len(c.Trees) + len(c.Duals) + len(c.Primals))
	if _, err := w.Write(hdr.buf.Bytes()); err != nil {
		return err
	}
	for _, t := range c.Trees {
		var e enc
		if err := encodeTree(&e, g, &t); err != nil {
			return err
		}
		if err := writeSection(w, secTree, e.buf.Bytes()); err != nil {
			return err
		}
	}
	for _, la := range c.Duals {
		var e enc
		if err := encodeDual(&e, g, &la); err != nil {
			return err
		}
		if err := writeSection(w, secDual, e.buf.Bytes()); err != nil {
			return err
		}
	}
	for _, la := range c.Primals {
		var e enc
		encodePrimal(&e, g, &la)
		if err := writeSection(w, secPrimal, e.buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

func writeSection(w io.Writer, typ byte, payload []byte) error {
	var hdr enc
	hdr.byte(typ)
	hdr.uvarint(uint64(len(payload)))
	if _, err := w.Write(hdr.buf.Bytes()); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// Decode reads a snapshot for g from r, verifying magic, version,
// fingerprint and per-section checksums, and materializes every substrate
// against g. lengths supplies the per-dart length vectors of the labeling
// sections. Trees decode before labelings regardless of section order; a
// labeling whose tree section is absent from the same snapshot is
// ErrCorrupt (labelings always travel with the tree they decode over).
func Decode(r io.Reader, g *planar.Graph, lengths LengthsFunc) (*Contents, error) {
	br := &byteCounter{r: r}
	var hdr [6 + 1 + 8]byte
	if err := readFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if !bytes.Equal(hdr[:6], magic[:]) {
		return nil, ErrBadMagic
	}
	if v := hdr[6]; v != Version {
		return nil, fmt.Errorf("%w: got %d, this build decodes %d", ErrVersion, v, Version)
	}
	if fp := binary.LittleEndian.Uint64(hdr[7:]); fp != Fingerprint(g) {
		return nil, fmt.Errorf("%w: snapshot %016x, graph %016x", ErrFingerprint, fp, Fingerprint(g))
	}
	nsec, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	// A substrate section costs >= 8 bytes on the wire; an nsec beyond any
	// plausible substrate family count is a crafted header.
	if nsec > 1<<20 {
		return nil, fmt.Errorf("%w: %d sections", ErrCorrupt, nsec)
	}

	type rawSec struct {
		typ     byte
		payload []byte
	}
	secs := make([]rawSec, 0, min(int(nsec), 64))
	for i := uint64(0); i < nsec; i++ {
		var tb [1]byte
		if err := readFull(br, tb[:]); err != nil {
			return nil, err
		}
		if tb[0] < secTree || tb[0] > maxSecType {
			return nil, fmt.Errorf("%w: unknown section type %d", ErrCorrupt, tb[0])
		}
		plen, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		// Grow with the bytes that actually arrive, so a crafted length on
		// a truncated file fails as ErrTruncated without a giant allocation.
		var pb bytes.Buffer
		if n, err := io.CopyN(&pb, br, int64(plen)); err != nil {
			return nil, fmt.Errorf("%w: section payload %d/%d bytes", ErrTruncated, n, plen)
		}
		var crc [4]byte
		if err := readFull(br, crc[:]); err != nil {
			return nil, err
		}
		if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(pb.Bytes()) {
			return nil, fmt.Errorf("%w: section %d", ErrChecksum, i)
		}
		secs = append(secs, rawSec{typ: tb[0], payload: pb.Bytes()})
	}
	// Exactly nsec sections, then EOF.
	var one [1]byte
	if _, err := io.ReadFull(br, one[:]); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes after %d sections", ErrCorrupt, nsec)
	}

	c := &Contents{}
	for _, s := range secs {
		if s.typ != secTree {
			continue
		}
		t, err := decodeTree(&dec{b: s.payload}, g)
		if err != nil {
			return nil, err
		}
		for _, prev := range c.Trees {
			if prev.LeafLimit == t.LeafLimit {
				return nil, fmt.Errorf("%w: duplicate tree section (leaf limit %d)", ErrCorrupt, t.LeafLimit)
			}
		}
		c.Trees = append(c.Trees, *t)
	}
	for _, s := range secs {
		switch s.typ {
		case secDual:
			la, err := decodeDual(&dec{b: s.payload}, g, c, lengths)
			if err != nil {
				return nil, err
			}
			c.Duals = append(c.Duals, *la)
		case secPrimal:
			la, err := decodePrimal(&dec{b: s.payload}, g, c, lengths)
			if err != nil {
				return nil, err
			}
			c.Primals = append(c.Primals, *la)
		}
	}
	return c, nil
}

// byteCounter wraps the input so header reads can distinguish "ends
// early" (ErrTruncated) from transport errors.
type byteCounter struct {
	r io.Reader
}

func (b *byteCounter) Read(p []byte) (int, error) { return b.r.Read(p) }

func readFull(r io.Reader, p []byte) error {
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: need %d bytes", ErrTruncated, len(p))
		}
		return err
	}
	return nil
}

func readUvarint(r io.Reader) (uint64, error) {
	var x uint64
	var s uint
	var b [1]byte
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if err := readFull(r, b[:]); err != nil {
			return 0, err
		}
		if b[0] < 0x80 {
			if i == binary.MaxVarintLen64-1 && b[0] > 1 {
				return 0, fmt.Errorf("%w: uvarint overflow", ErrCorrupt)
			}
			return x | uint64(b[0])<<s, nil
		}
		x |= uint64(b[0]&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("%w: uvarint overflow", ErrCorrupt)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
