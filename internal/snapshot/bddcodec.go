package snapshot

// BDD tree codec (section type 1). A bag is stored as its identity
// (level, parent, children), its dart list, the measured tree depth, and
// the separator summary of non-leaf bags; everything derivable from those
// against the fingerprint-checked graph — dart/edge membership bitmaps,
// face tables, whole-face flags, the per-dart side assignment — is
// reconstructed at decode time, which keeps snapshots a fraction of the
// resident footprint while restoring the exact in-memory structure the
// builder would have produced.

import (
	"fmt"

	"planarflow/internal/bdd"
	"planarflow/internal/planar"
	"planarflow/internal/separator"
)

// TreeEntry is one BDD substrate: the tree, its artifact key (leaf
// limit), and its original construction cost in simulated rounds.
type TreeEntry struct {
	LeafLimit   int
	BuildRounds int64
	Tree        *bdd.BDD
}

func encodeTree(e *enc, g *planar.Graph, t *TreeEntry) error {
	tr := t.Tree
	for i, b := range tr.Bags {
		if b.ID != i {
			return fmt.Errorf("snapshot: encode: bag %d stored at index %d", b.ID, i)
		}
	}
	e.uvarint(uint64(t.LeafLimit))
	e.varint(t.BuildRounds)
	e.uvarint(uint64(tr.Depth))
	e.count(len(tr.Bags))
	for _, b := range tr.Bags {
		e.uvarint(uint64(b.Level))
		parent := 0
		if b.Parent != nil {
			parent = b.Parent.ID + 1
		}
		e.uvarint(uint64(parent))
		e.count(len(b.Children))
		for _, c := range b.Children {
			e.id(c.ID)
		}
		e.uvarint(uint64(b.TreeDepth))
		e.ints(dartsToInts(b.Darts))
		e.ints(b.SXEdges)
		e.ints(b.DualSXEdges)
		e.ints(b.FX)
		e.bool(b.Sep != nil)
		if b.Sep != nil {
			s := b.Sep
			e.bool(s.EX.Real)
			e.varint(int64(s.EX.Edge))
			e.id(s.EX.U)
			e.id(s.EX.V)
			e.ints(s.CycleVertices)
			e.ints(s.CycleEdges)
			e.uvarint(uint64(s.InsideWeight))
			e.uvarint(uint64(s.TotalWeight))
			e.float(s.Balance)
			e.uvarint(uint64(s.TreeDepth))
			// Most of Side reconstructs from child membership (the split
			// assigned every bag dart to the child it landed in); the
			// remainder — darts of bag edges that are not themselves in the
			// bag (hole-boundary darts) — is stored explicitly per side.
			var extra [2][]int
			for d := 0; d < g.NumDarts(); d++ {
				side := s.Side[d]
				if side < 0 || b.Children[0].InBag[d] || b.Children[1].InBag[d] {
					continue
				}
				extra[side] = append(extra[side], d)
			}
			e.ints(extra[0])
			e.ints(extra[1])
		}
	}
	return nil
}

func decodeTree(d *dec, g *planar.Graph) (*TreeEntry, error) {
	leafLimit, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	buildRounds, err := d.varint()
	if err != nil {
		return nil, err
	}
	depth, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	numBags, err := d.count()
	if err != nil {
		return nil, err
	}
	if numBags == 0 {
		return nil, fmt.Errorf("%w: tree with no bags", ErrCorrupt)
	}
	t := &bdd.BDD{G: g, LeafLimit: int(leafLimit), Depth: int(depth)}
	fd := g.Faces()
	bags := make([]*bdd.Bag, numBags)
	for i := range bags {
		bags[i] = &bdd.Bag{ID: i}
	}
	type pending struct {
		parent   int // -1 for root
		children []int
		extra    [2][]int // explicit Side assignments per region
	}
	links := make([]pending, numBags)
	for i, b := range bags {
		level, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		b.Level = int(level)
		parent, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if parent > uint64(i) { // parent id must be < own id (or 0 = none)
			return nil, fmt.Errorf("%w: bag %d parent %d", ErrCorrupt, i, parent-1)
		}
		links[i].parent = int(parent) - 1
		nc, err := d.count()
		if err != nil {
			return nil, err
		}
		if nc != 0 && nc != 2 {
			return nil, fmt.Errorf("%w: bag %d has %d children", ErrCorrupt, i, nc)
		}
		for j := 0; j < nc; j++ {
			c, err := d.id(numBags)
			if err != nil {
				return nil, err
			}
			if c <= i {
				return nil, fmt.Errorf("%w: bag %d child %d not below it", ErrCorrupt, i, c)
			}
			links[i].children = append(links[i].children, c)
		}
		td, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		b.TreeDepth = int(td)
		darts, err := d.ints(g.NumDarts())
		if err != nil {
			return nil, err
		}
		if len(darts) == 0 {
			return nil, fmt.Errorf("%w: bag %d has no darts", ErrCorrupt, i)
		}
		if b.SXEdges, err = d.ints(g.M()); err != nil {
			return nil, err
		}
		if b.DualSXEdges, err = d.ints(g.M()); err != nil {
			return nil, err
		}
		if b.FX, err = d.ints(fd.NumFaces()); err != nil {
			return nil, err
		}
		fillBagDerived(g, fd, b, darts)
		hasSep, err := d.bool()
		if err != nil {
			return nil, err
		}
		if hasSep != (nc == 2) {
			return nil, fmt.Errorf("%w: bag %d separator/children mismatch", ErrCorrupt, i)
		}
		if hasSep {
			s := &separator.Result{Found: true}
			if s.EX.Real, err = d.bool(); err != nil {
				return nil, err
			}
			edge, err := d.varint()
			if err != nil {
				return nil, err
			}
			if edge < -1 || edge >= int64(g.M()) || (s.EX.Real && edge < 0) {
				return nil, fmt.Errorf("%w: bag %d EX edge %d", ErrCorrupt, i, edge)
			}
			s.EX.Edge = int(edge)
			if s.EX.U, err = d.id(g.N()); err != nil {
				return nil, err
			}
			if s.EX.V, err = d.id(g.N()); err != nil {
				return nil, err
			}
			if s.CycleVertices, err = d.ints(g.N()); err != nil {
				return nil, err
			}
			if s.CycleEdges, err = d.ints(g.M()); err != nil {
				return nil, err
			}
			iw, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			tw, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			s.InsideWeight, s.TotalWeight = int(iw), int(tw)
			if s.Balance, err = d.float(); err != nil {
				return nil, err
			}
			std, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			s.TreeDepth = int(std)
			for side := 0; side < 2; side++ {
				if links[i].extra[side], err = d.ints(g.NumDarts()); err != nil {
					return nil, err
				}
			}
			b.Sep = s
		}
	}
	// Link the tree and rebuild each separator's per-dart side assignment
	// from child membership (split assigned dart d to the child InBag it
	// lands in; darts outside the bag carry -1).
	for i, b := range bags {
		if links[i].parent >= 0 {
			b.Parent = bags[links[i].parent]
		}
		for _, c := range links[i].children {
			b.Children = append(b.Children, bags[c])
		}
		if len(b.Children) == 2 {
			side := make([]int8, g.NumDarts())
			for d := range side {
				side[d] = -1
			}
			for ci, c := range b.Children {
				for _, dart := range c.Darts {
					side[dart] = int8(ci)
				}
			}
			for ci := range links[i].extra {
				for _, dart := range links[i].extra[ci] {
					side[dart] = int8(ci)
				}
			}
			b.Sep.Side = side
		}
	}
	for _, b := range bags {
		for _, c := range b.Children {
			if c.Parent != b {
				return nil, fmt.Errorf("%w: bag %d claimed by two parents", ErrCorrupt, c.ID)
			}
		}
	}
	t.Root = bags[0]
	t.Bags = bags
	return &TreeEntry{LeafLimit: int(leafLimit), BuildRounds: buildRounds, Tree: t}, nil
}

// fillBagDerived mirrors bdd.(*BDD).fillDerived without the BFS: darts
// are stored, membership and face tables derive from them, and the
// measured TreeDepth travels in the snapshot.
func fillBagDerived(g *planar.Graph, fd *planar.FaceData, b *bdd.Bag, darts []int) {
	b.Darts = make([]planar.Dart, len(darts))
	b.InBag = make([]bool, g.NumDarts())
	b.EdgeIn = make([]bool, g.M())
	b.FaceSet = make(map[int]bool)
	faceDarts := map[int]int{}
	for i, di := range darts {
		dart := planar.Dart(di)
		b.Darts[i] = dart
		b.InBag[dart] = true
		b.EdgeIn[planar.EdgeOf(dart)] = true
		f := fd.FaceOf(dart)
		if !b.FaceSet[f] {
			b.FaceSet[f] = true
			b.Faces = append(b.Faces, f)
		}
		faceDarts[f]++
	}
	b.Whole = make(map[int]bool, len(b.Faces))
	for _, f := range b.Faces {
		b.Whole[f] = faceDarts[f] == fd.Len(f)
	}
}

func dartsToInts(ds []planar.Dart) []int {
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = int(d)
	}
	return out
}
