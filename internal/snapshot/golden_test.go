package snapshot

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden snapshot fixture")

const goldenPath = "testdata/grid5x6-v1.pfsnap"

// TestGoldenByteStability pins the version-1 byte format: the committed
// fixture must decode, and re-encoding today's build of the same
// substrates must reproduce it byte-for-byte. A failure means the codec
// changed encoding for version 1 — which breaks every snapshot already
// on disk — or a builder stopped being deterministic. Either bump the
// format version (and keep the old decoder) or fix the regression;
// regenerate the fixture with `go test -run Golden -update-golden
// ./internal/snapshot` only for an intentional, version-bumped change.
func TestGoldenByteStability(t *testing.T) {
	g := testGraph(t)
	c := buildContents(t, g)
	data := encodeAll(t, g, c)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden fixture rewritten: %d bytes", len(data))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		i := 0
		for i < len(data) && i < len(want) && data[i] == want[i] {
			i++
		}
		t.Fatalf("snapshot bytes diverge from golden fixture at offset %d (%d vs %d bytes total)",
			i, len(data), len(want))
	}

	// The committed bytes must also decode and round-trip.
	c2, err := Decode(bytes.NewReader(want), g, lengthsFor(g))
	if err != nil {
		t.Fatalf("golden fixture failed to decode: %v", err)
	}
	if !bytes.Equal(encodeAll(t, g, c2), want) {
		t.Fatal("golden fixture does not round-trip")
	}
}
