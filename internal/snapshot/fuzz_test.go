package snapshot

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"planarflow/internal/planar"
)

// fuzzFixture caches the fuzz target's graph and a valid snapshot of it;
// building substrates per-input would drown the fuzzer in setup cost.
var fuzzFixture struct {
	once sync.Once
	g    *planar.Graph
	data []byte
}

func fuzzSetup(t testing.TB) (*planar.Graph, []byte) {
	fuzzFixture.once.Do(func() {
		rng := planar.NewRand(7)
		g := planar.WithRandomWeights(planar.Grid(5, 6), rng, 1, 9, 1, 16)
		c := buildContents(t, g)
		var buf bytes.Buffer
		if err := Encode(&buf, g, c); err != nil {
			t.Fatal(err)
		}
		fuzzFixture.g = g
		fuzzFixture.data = buf.Bytes()
	})
	return fuzzFixture.g, fuzzFixture.data
}

var updateCorpus = flag.Bool("update-corpus", false, "rewrite the committed FuzzDecodeSnapshot seed corpus")

// TestWriteSeedCorpus (with -update-corpus) materializes the seed inputs
// as committed corpus files under testdata/fuzz/FuzzDecodeSnapshot, so
// the regular `go test` run replays them and CI fuzzing starts from the
// interesting shapes: a valid snapshot, truncations at several depths, a
// flipped payload bit, a flipped CRC byte, a future version.
func TestWriteSeedCorpus(t *testing.T) {
	if !*updateCorpus {
		t.Skip("run with -update-corpus to rewrite the seed corpus")
	}
	_, valid := fuzzSetup(t)
	futureVersion := append([]byte(nil), valid...)
	futureVersion[6] = Version + 1
	flippedPayload := append([]byte(nil), valid...)
	flippedPayload[len(flippedPayload)/2] ^= 0xff
	flippedCRC := append([]byte(nil), valid...)
	flippedCRC[len(flippedCRC)-1] ^= 0x01
	seeds := map[string][]byte{
		"valid":            valid,
		"empty":            {},
		"magic-only":       []byte("PFSNAP"),
		"truncated-header": valid[:15],
		"truncated-body":   valid[:len(valid)/2],
		"future-version":   futureVersion,
		"flipped-payload":  flippedPayload,
		"flipped-crc":      flippedCRC,
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSnapshot")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d corpus seeds to %s", len(seeds), dir)
}

// FuzzDecodeSnapshot holds the decoder to its contract: any byte string
// either decodes cleanly or fails with one of the typed sentinels —
// never a panic, never an unbounded allocation. Inputs that do decode
// must re-encode deterministically (decode∘encode is the identity on
// the valid subset).
func FuzzDecodeSnapshot(f *testing.F) {
	_, valid := fuzzSetup(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("PFSNAP"))
	f.Add(valid[:len(valid)/2]) // truncated mid-section
	f.Add(valid[:15])           // truncated header
	bad := append([]byte(nil), valid...)
	bad[6] = Version + 1 // version skew
	f.Add(bad)
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0xff // payload corruption (checksum must catch)
	f.Add(flip)
	crc := append([]byte(nil), valid...)
	crc[len(crc)-1] ^= 0x01 // flipped CRC byte
	f.Add(crc)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, _ := fuzzSetup(t)
		c, err := Decode(bytes.NewReader(data), g, lengthsFor(g))
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrFingerprint) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, g, c); err != nil {
			t.Fatalf("decoded contents failed to re-encode: %v", err)
		}
		if _, err := Decode(bytes.NewReader(buf.Bytes()), g, lengthsFor(g)); err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
	})
}
