// Package decode is the fast execution route for the label-backed query
// families: once the prepared substrates (BDD bags, distance labelings)
// exist, a query is a local decode (§5, Thm 2.1), so nothing about its
// answer — or its charged CONGEST bound — depends on re-entering the
// simulated network. The engine answers dualsssp from a per-source decode
// row and the argless families (girth, dirgirth, globalmincut) from a
// record-and-replay memo, while keeping the charged-rounds ledger as an
// audit artifact: every fast answer carries exactly the entries the
// simulated route would have recorded, phase by phase, so the two routes
// are bit-identical in both payload and rounds (the differential tests in
// the planarflow package hold them to that).
//
// Invariants the engine maintains:
//
//   - Substrate construction is still charged to the query that triggers
//     it (Build scope), exactly as on the simulated route: the engine
//     fetches substrates through the caller's ledger and memoizes only the
//     Query-scope entries of the first run.
//   - Results handed to callers never alias the cache: slices are copied
//     on every hit, so a caller mutating an Answer cannot corrupt later
//     answers.
//   - Errors are never memoized; an erroring query re-runs the core route
//     with the caller's ledger and reports the identical error.
package decode

import (
	"sync"
	"time"

	"planarflow/internal/artifact"
	"planarflow/internal/core"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
)

// Engine caches decoded answers for one artifact.Prepared. It is shared by
// every context-bound view of a PreparedGraph and is safe for concurrent
// use; its lifetime (and memory) is tied to the prepared bundle, so store
// eviction drops the caches with the substrates.
type Engine struct {
	mu   sync.Mutex
	rows map[rowKey]*ssspRow
	// Memo per argless family; dirgirth and globalmincut key by resolved
	// leaf limit (their answers decode from leaf-limit-keyed substrates),
	// girth has no substrate and a single entry.
	girth map[int]*girthMemo
	dir   map[int]*dirMemo
	cut   map[int]*cutMemo
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		rows:  make(map[rowKey]*ssspRow),
		girth: make(map[int]*girthMemo),
		dir:   make(map[int]*dirMemo),
		cut:   make(map[int]*cutMemo),
	}
}

// rowKey identifies one decoded SSSP row. Keying by labeling pointer keeps
// rows of distinct leaf limits (distinct labelings) apart and lets a
// restored or rebuilt labeling start with fresh rows.
type rowKey struct {
	la     *duallabel.Labeling
	source int
}

// ssspRow is one memoized dual SSSP computation: the decoded result plus
// the per-query phases the simulated route records for it, replayed into
// every caller's ledger.
type ssspRow struct {
	res *duallabel.SSSPResult
	led *ledger.Ledger
}

type girthMemo struct {
	res *core.GirthResult
	led *ledger.Ledger
}

type dirMemo struct {
	weight int64
	led    *ledger.Ledger
}

type cutMemo struct {
	res *core.GlobalCutResult
	led *ledger.Ledger
}

// DualSSSP answers a dual single-source shortest-paths query from the
// decoded row cache. The undirected dual labeling is fetched through the
// caller's ledger (so a triggered build is charged to this query, Build
// scope, as on the simulated route); the row itself — the label broadcast
// and tree marking of Lemma 2.2 — is decoded once per (labeling, source)
// and replayed thereafter.
func (e *Engine) DualSSSP(p *artifact.Prepared, sourceFace, leafLimit int, led *ledger.Ledger) (*duallabel.SSSPResult, error) {
	la, err := p.DualLabels(artifact.Undirected, leafLimit, led)
	if err != nil {
		return nil, err
	}
	if la.NegCycle {
		// Mirror core.DualSSSP: a negative cycle is reported without
		// decoding (and without per-query charges).
		return &duallabel.SSSPResult{Source: sourceFace, NegCycle: true}, nil
	}
	row := e.row(la, sourceFace)
	led.Merge(row.led)
	return &duallabel.SSSPResult{
		Source:   sourceFace,
		Dist:     append([]int64(nil), row.res.Dist...),
		TreeDart: append([]planar.Dart(nil), row.res.TreeDart...),
	}, nil
}

// row returns the memoized SSSP row, decoding it on first use. The decode
// runs outside the engine lock (two racing first queries both decode — the
// results are identical and the first publish wins), so a cold row never
// serializes unrelated queries.
func (e *Engine) row(la *duallabel.Labeling, source int) *ssspRow {
	k := rowKey{la, source}
	e.mu.Lock()
	r := e.rows[k]
	e.mu.Unlock()
	if r != nil {
		mRowHits.Inc()
		return r
	}
	mRowMisses.Inc()
	t0 := time.Now()
	scratch := ledger.New()
	r = &ssspRow{res: la.SSSP(source, scratch), led: scratch}
	mDecode["dualsssp"].Observe(time.Since(t0))
	e.mu.Lock()
	if prev := e.rows[k]; prev != nil {
		r = prev
	} else {
		e.rows[k] = r
	}
	e.mu.Unlock()
	return r
}

// Girth answers the weighted-girth query from the memo, running the
// minor-aggregation route of Thm 1.7 exactly once per graph.
func (e *Engine) Girth(p *artifact.Prepared, led *ledger.Ledger) (*core.GirthResult, error) {
	e.mu.Lock()
	m := e.girth[0]
	e.mu.Unlock()
	if m != nil {
		mMemoHits["girth"].Inc()
		led.Merge(m.led)
		return &core.GirthResult{
			Weight:     m.res.Weight,
			CycleEdges: append([]int(nil), m.res.CycleEdges...),
		}, nil
	}
	mMemoMisses["girth"].Inc()
	t0 := time.Now()
	scratch := ledger.New()
	res, err := core.Girth(p, scratch)
	led.Merge(scratch)
	if err != nil {
		return nil, err
	}
	mDecode["girth"].Observe(time.Since(t0))
	e.mu.Lock()
	if e.girth[0] == nil {
		e.girth[0] = &girthMemo{res: res, led: queryOnly(scratch)}
	}
	e.mu.Unlock()
	return &core.GirthResult{
		Weight:     res.Weight,
		CycleEdges: append([]int(nil), res.CycleEdges...),
	}, nil
}

// DirectedGirth answers the directed-girth query from the memo, keyed by
// the resolved leaf limit of the BDD/labeling substrate it decodes from.
func (e *Engine) DirectedGirth(p *artifact.Prepared, opt core.Options, led *ledger.Ledger) (int64, error) {
	k := p.ResolveLeafLimit(opt.LeafLimit)
	e.mu.Lock()
	m := e.dir[k]
	e.mu.Unlock()
	if m != nil {
		mMemoHits["dirgirth"].Inc()
		led.Merge(m.led)
		return m.weight, nil
	}
	mMemoMisses["dirgirth"].Inc()
	t0 := time.Now()
	scratch := ledger.New()
	w, err := core.DirectedGirth(p, opt, scratch)
	led.Merge(scratch)
	if err != nil {
		return 0, err
	}
	mDecode["dirgirth"].Observe(time.Since(t0))
	e.mu.Lock()
	if e.dir[k] == nil {
		e.dir[k] = &dirMemo{weight: w, led: queryOnly(scratch)}
	}
	e.mu.Unlock()
	return w, nil
}

// GlobalMinCut answers the directed global minimum cut from the memo,
// keyed like DirectedGirth. The zero-cut early exit (a graph that is not
// strongly connected) memoizes too: its strong-connectivity charge is a
// per-query phase and replays like any other.
func (e *Engine) GlobalMinCut(p *artifact.Prepared, opt core.Options, led *ledger.Ledger) (*core.GlobalCutResult, error) {
	k := p.ResolveLeafLimit(opt.LeafLimit)
	e.mu.Lock()
	m := e.cut[k]
	e.mu.Unlock()
	if m != nil {
		mMemoHits["globalmincut"].Inc()
		led.Merge(m.led)
		return copyCut(m.res), nil
	}
	mMemoMisses["globalmincut"].Inc()
	t0 := time.Now()
	scratch := ledger.New()
	res, err := core.GlobalMinCut(p, opt, scratch)
	led.Merge(scratch)
	if err != nil {
		return nil, err
	}
	mDecode["globalmincut"].Observe(time.Since(t0))
	e.mu.Lock()
	if e.cut[k] == nil {
		e.cut[k] = &cutMemo{res: res, led: queryOnly(scratch)}
	}
	e.mu.Unlock()
	return copyCut(res), nil
}

func copyCut(res *core.GlobalCutResult) *core.GlobalCutResult {
	return &core.GlobalCutResult{
		Value:    res.Value,
		Side:     append([]bool(nil), res.Side...),
		CutEdges: append([]int(nil), res.CutEdges...),
	}
}

// queryOnly extracts the replayable record of a first run: its Query-scope
// entries. Build-scope entries (a substrate the first query happened to
// trigger) are one-time costs that later queries must not repeat — on the
// simulated route they would hit the warm substrate cache and charge
// nothing.
func queryOnly(l *ledger.Ledger) *ledger.Ledger {
	out := ledger.New()
	out.MergeScoped(l, ledger.Query)
	return out
}
