package decode

// Telemetry handles, resolved once: hit/miss counts for the row cache
// and the per-family memos, plus the cold-decode latency per family. A
// cache hit costs one atomic increment.

import "planarflow/internal/obs"

var (
	mRowHits = obs.Default().Counter("decode_row_hits_total",
		"Dual-SSSP row cache hits.")
	mRowMisses = obs.Default().Counter("decode_row_misses_total",
		"Dual-SSSP row cache misses (a fresh decode ran).")
	mMemoHits = map[string]*obs.Counter{
		"girth":        obs.Default().Counter("decode_memo_hits_total", "Argless-family memo hits by family.", obs.L("family", "girth")),
		"dirgirth":     obs.Default().Counter("decode_memo_hits_total", "", obs.L("family", "dirgirth")),
		"globalmincut": obs.Default().Counter("decode_memo_hits_total", "", obs.L("family", "globalmincut")),
	}
	mMemoMisses = map[string]*obs.Counter{
		"girth":        obs.Default().Counter("decode_memo_misses_total", "Argless-family memo misses by family.", obs.L("family", "girth")),
		"dirgirth":     obs.Default().Counter("decode_memo_misses_total", "", obs.L("family", "dirgirth")),
		"globalmincut": obs.Default().Counter("decode_memo_misses_total", "", obs.L("family", "globalmincut")),
	}
	mDecode = map[string]*obs.Histogram{
		"dualsssp":     obs.Default().Histogram("decode_seconds", "Cold decode latency by family (cache misses only).", obs.L("family", "dualsssp")),
		"girth":        obs.Default().Histogram("decode_seconds", "", obs.L("family", "girth")),
		"dirgirth":     obs.Default().Histogram("decode_seconds", "", obs.L("family", "dirgirth")),
		"globalmincut": obs.Default().Histogram("decode_seconds", "", obs.L("family", "globalmincut")),
	}
)
