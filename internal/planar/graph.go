package planar

import (
	"errors"
	"fmt"
	"sync"
)

// Edge is a directed, weighted, capacitated edge of a planar graph. The
// direction (U -> V) carries algorithmic meaning (flow direction, directed
// lengths); the embedding is on the undirected support.
type Edge struct {
	U, V   int
	Weight int64
	Cap    int64
}

// Graph is a connected embedded planar graph. It is immutable after
// construction; algorithms derive their own per-dart length/capacity vectors
// (indexed by Dart) rather than mutating the graph.
type Graph struct {
	n     int
	edges []Edge

	// rot[v] is the cyclic (clockwise, by convention of the generator) order
	// of darts whose tail is v. rotPos[d] is the index of d within
	// rot[Tail(d)].
	rot    [][]Dart
	rotPos []int

	facesOnce sync.Once
	faces     *FaceData // lazily computed face structure (guarded by facesOnce)
}

// NewGraph builds an embedded planar graph from an explicit rotation system.
// rot[v] must list, in cyclic order, exactly the darts whose tail is v.
// The construction is validated: darts must partition correctly and the
// rotation system must describe a connected planar embedding (Euler check).
func NewGraph(n int, edges []Edge, rot [][]Dart) (*Graph, error) {
	g := &Graph{
		n:      n,
		edges:  make([]Edge, len(edges)),
		rot:    make([][]Dart, n),
		rotPos: make([]int, 2*len(edges)),
	}
	copy(g.edges, edges)
	if len(rot) != n {
		return nil, fmt.Errorf("planar: rotation system has %d vertices, want %d", len(rot), n)
	}
	for v := range rot {
		g.rot[v] = make([]Dart, len(rot[v]))
		copy(g.rot[v], rot[v])
	}
	if err := g.indexRotations(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustGraph is NewGraph that panics on error; intended for generators and
// tests whose inputs are correct by construction.
func MustGraph(n int, edges []Edge, rot [][]Dart) *Graph {
	g, err := NewGraph(n, edges, rot)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) indexRotations() error {
	seen := make([]bool, 2*len(g.edges))
	for v, ds := range g.rot {
		for i, d := range ds {
			if d < 0 || int(d) >= 2*len(g.edges) {
				return fmt.Errorf("planar: vertex %d lists out-of-range dart %d", v, d)
			}
			if seen[d] {
				return fmt.Errorf("planar: dart %d appears twice in rotation system", d)
			}
			seen[d] = true
			if g.Tail(d) != v {
				return fmt.Errorf("planar: dart %d (tail %d) listed at vertex %d", d, g.Tail(d), v)
			}
			g.rotPos[d] = i
		}
	}
	for d, ok := range seen {
		if !ok {
			return fmt.Errorf("planar: dart %d missing from rotation system", d)
		}
	}
	return nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// NumDarts returns 2*M().
func (g *Graph) NumDarts() int { return 2 * len(g.edges) }

// Edge returns edge e.
func (g *Graph) Edge(e int) Edge { return g.edges[e] }

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Tail returns the vertex the dart leaves.
func (g *Graph) Tail(d Dart) int {
	e := g.edges[EdgeOf(d)]
	if IsForward(d) {
		return e.U
	}
	return e.V
}

// Head returns the vertex the dart enters.
func (g *Graph) Head(d Dart) int { return g.Tail(Rev(d)) }

// Degree returns the number of edge-ends at v.
func (g *Graph) Degree(v int) int { return len(g.rot[v]) }

// Rotation returns the cyclic order of outgoing darts at v. The returned
// slice must not be modified.
func (g *Graph) Rotation(v int) []Dart { return g.rot[v] }

// RotationIndex returns the position of d within Rotation(Tail(d)).
func (g *Graph) RotationIndex(d Dart) int { return g.rotPos[d] }

// NextInRotation returns the dart following d in the cyclic order at Tail(d).
func (g *Graph) NextInRotation(d Dart) Dart {
	v := g.Tail(d)
	i := g.rotPos[d] + 1
	if i == len(g.rot[v]) {
		i = 0
	}
	return g.rot[v][i]
}

// PrevInRotation returns the dart preceding d in the cyclic order at Tail(d).
func (g *Graph) PrevInRotation(d Dart) Dart {
	v := g.Tail(d)
	i := g.rotPos[d] - 1
	if i < 0 {
		i = len(g.rot[v]) - 1
	}
	return g.rot[v][i]
}

// FaceSuccessor returns the dart that follows d on the boundary cycle of the
// face containing d: the rotation successor of Rev(d) at Head(d). Orbits of
// this permutation are exactly the faces of the embedding.
func (g *Graph) FaceSuccessor(d Dart) Dart { return g.NextInRotation(Rev(d)) }

// FacePredecessor inverts FaceSuccessor.
func (g *Graph) FacePredecessor(d Dart) Dart { return Rev(g.PrevInRotation(d)) }

// Validate checks that the rotation system describes a connected planar
// embedding: the graph is connected and Euler's formula n - m + f = 2 holds.
func (g *Graph) Validate() error {
	if g.n == 0 {
		return errors.New("planar: empty graph")
	}
	if !g.Connected() {
		return errors.New("planar: graph is not connected")
	}
	f := g.Faces().NumFaces()
	if g.n-g.M()+f != 2 {
		return fmt.Errorf("planar: Euler check failed: n=%d m=%d f=%d (n-m+f=%d, want 2)",
			g.n, g.M(), f, g.n-g.M()+f)
	}
	return nil
}

// Connected reports whether the undirected support is connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return false
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range g.rot[v] {
			u := g.Head(d)
			if !seen[u] {
				seen[u] = true
				cnt++
				stack = append(stack, u)
			}
		}
	}
	return cnt == g.n
}

// TotalCap returns the sum of all edge capacities (used to bound flow values).
func (g *Graph) TotalCap() int64 {
	var s int64
	for _, e := range g.edges {
		s += e.Cap
	}
	return s
}

// MaxWeight returns the maximum absolute edge weight (W in the paper's
// polynomially-bounded-weights assumption).
func (g *Graph) MaxWeight() int64 {
	var w int64
	for _, e := range g.edges {
		a := e.Weight
		if a < 0 {
			a = -a
		}
		if a > w {
			w = a
		}
	}
	return w
}
