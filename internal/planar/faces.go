package planar

// FaceData holds the face structure of an embedded planar graph: the orbit
// partition of the face-successor permutation. Each face is a cyclic sequence
// of darts; every dart belongs to exactly one face.
type FaceData struct {
	faceOf []int    // faceOf[d] = face index containing dart d
	cycles [][]Dart // cycles[f] = boundary darts of face f, in orbit order
}

// Faces computes (and caches) the face structure. Safe for concurrent use:
// the prepared-graph serving layer calls it from many query goroutines.
func (g *Graph) Faces() *FaceData {
	g.facesOnce.Do(g.computeFaces)
	return g.faces
}

func (g *Graph) computeFaces() {
	nd := g.NumDarts()
	fd := &FaceData{faceOf: make([]int, nd)}
	for d := range fd.faceOf {
		fd.faceOf[d] = -1
	}
	for d0 := Dart(0); int(d0) < nd; d0++ {
		if fd.faceOf[d0] != -1 {
			continue
		}
		f := len(fd.cycles)
		var cyc []Dart
		d := d0
		for {
			fd.faceOf[d] = f
			cyc = append(cyc, d)
			d = g.FaceSuccessor(d)
			if d == d0 {
				break
			}
		}
		fd.cycles = append(fd.cycles, cyc)
	}
	g.faces = fd
}

// NumFaces returns the number of faces.
func (fd *FaceData) NumFaces() int { return len(fd.cycles) }

// FaceOf returns the face containing dart d.
func (fd *FaceData) FaceOf(d Dart) int { return fd.faceOf[d] }

// Cycle returns the boundary darts of face f in orbit order. The returned
// slice must not be modified.
func (fd *FaceData) Cycle(f int) []Dart { return fd.cycles[f] }

// Len returns the number of darts on the boundary of face f.
func (fd *FaceData) Len(f int) int { return len(fd.cycles[f]) }

// LargestFace returns the face with the most boundary darts (a natural choice
// of "outer" face for generators that do not fix one).
func (fd *FaceData) LargestFace() int {
	best, bestLen := 0, -1
	for f, c := range fd.cycles {
		if len(c) > bestLen {
			best, bestLen = f, len(c)
		}
	}
	return best
}

// FacesAtVertex returns the distinct faces incident to vertex v, in rotation
// order (a face may repeat around v in multigraph-like situations; duplicates
// are removed while preserving first-occurrence order).
func (g *Graph) FacesAtVertex(v int) []int {
	fd := g.Faces()
	seen := make(map[int]bool, len(g.rot[v]))
	var out []int
	for _, d := range g.rot[v] {
		f := fd.FaceOf(d)
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// CommonFaces returns the faces incident to both u and v (used e.g. by the
// Hassin reduction, which requires s and t on a common face).
func (g *Graph) CommonFaces(u, v int) []int {
	fu := g.FacesAtVertex(u)
	set := make(map[int]bool, len(fu))
	for _, f := range fu {
		set[f] = true
	}
	var out []int
	for _, f := range g.FacesAtVertex(v) {
		if set[f] {
			out = append(out, f)
		}
	}
	return out
}
