package planar

// BFSResult holds an unweighted undirected BFS tree of the graph.
type BFSResult struct {
	Root   int
	Dist   []int  // hop distance from Root (-1 unreachable)
	Parent []Dart // dart pointing from Parent towards the vertex (NoDart at root)
	Depth  int    // eccentricity of Root
	Order  []int  // vertices in visit order
}

// BFS runs an undirected breadth-first search from root.
func (g *Graph) BFS(root int) *BFSResult {
	res := &BFSResult{
		Root:   root,
		Dist:   make([]int, g.n),
		Parent: make([]Dart, g.n),
		Order:  make([]int, 0, g.n),
	}
	for v := range res.Dist {
		res.Dist[v] = -1
		res.Parent[v] = NoDart
	}
	res.Dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		res.Order = append(res.Order, v)
		if res.Dist[v] > res.Depth {
			res.Depth = res.Dist[v]
		}
		for _, d := range g.rot[v] {
			u := g.Head(d)
			if res.Dist[u] == -1 {
				res.Dist[u] = res.Dist[v] + 1
				res.Parent[u] = d
				queue = append(queue, u)
			}
		}
	}
	return res
}

// BFSWithin runs BFS from root restricted to darts for which allowed reports
// true for the dart or its reversal (i.e. allowed edges).
func (g *Graph) BFSWithin(root int, allowed func(d Dart) bool) *BFSResult {
	res := &BFSResult{
		Root:   root,
		Dist:   make([]int, g.n),
		Parent: make([]Dart, g.n),
	}
	for v := range res.Dist {
		res.Dist[v] = -1
		res.Parent[v] = NoDart
	}
	res.Dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		res.Order = append(res.Order, v)
		if res.Dist[v] > res.Depth {
			res.Depth = res.Dist[v]
		}
		for _, d := range g.rot[v] {
			if !allowed(d) {
				continue
			}
			u := g.Head(d)
			if res.Dist[u] == -1 {
				res.Dist[u] = res.Dist[v] + 1
				res.Parent[u] = d
				queue = append(queue, u)
			}
		}
	}
	return res
}

// Diameter returns the exact unweighted hop diameter (n BFS runs; intended
// for test/benchmark sizes).
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if e := g.BFS(v).Depth; e > d {
			d = e
		}
	}
	return d
}

// DiameterLowerBound returns a 2-sweep lower bound on the diameter (exact on
// trees; at least D/2 in general), cheap enough for large benchmark graphs.
func (g *Graph) DiameterLowerBound() int {
	b1 := g.BFS(0)
	far := 0
	for v, dv := range b1.Dist {
		if dv > b1.Dist[far] {
			far = v
		}
	}
	return g.BFS(far).Depth
}
