package planar

import "fmt"

// InsertEdgeInFace returns a copy of g with one extra edge (u -> v, given
// weight/capacity) embedded inside face f, plus the new edge's id. Both u
// and v must lie on f; the insertion splits f into two faces while
// preserving planarity (the construction behind Hassin's st-planar flow
// reduction, §6.1).
func InsertEdgeInFace(g *Graph, u, v int, f int, weight, capacity int64) (*Graph, int, error) {
	if u == v {
		return nil, 0, fmt.Errorf("planar: cannot insert self-loop at %d", u)
	}
	fd := g.Faces()
	// Find a corner of each endpoint on f: a dart d with Tail(d) = x whose
	// predecessor corner belongs to f, i.e. FaceOf(Rev(prev dart)) == f.
	// Equivalently: a dart a arriving at x with FaceOf(a) == f; the new dart
	// leaves x inside that corner, so it is inserted right after Rev(a).
	cornerDart := func(x int) (Dart, bool) {
		for _, d := range g.Rotation(x) {
			a := Rev(d) // arrives at x
			if fd.FaceOf(a) == f {
				return d, true // insert new dart after d = Rev(a)
			}
		}
		return NoDart, false
	}
	du, okU := cornerDart(u)
	dv, okV := cornerDart(v)
	if !okU || !okV {
		return nil, 0, fmt.Errorf("planar: vertices %d,%d do not both lie on face %d", u, v, f)
	}

	e := g.M()
	edges := append(g.Edges(), Edge{U: u, V: v, Weight: weight, Cap: capacity})
	rot := make([][]Dart, g.N())
	for x := 0; x < g.N(); x++ {
		rot[x] = append([]Dart(nil), g.Rotation(x)...)
	}
	insertAfter := func(x int, after, nd Dart) {
		for i, d := range rot[x] {
			if d == after {
				rot[x] = append(rot[x], NoDart)
				copy(rot[x][i+2:], rot[x][i+1:])
				rot[x][i+1] = nd
				return
			}
		}
	}
	insertAfter(u, du, ForwardDart(e))
	insertAfter(v, dv, BackwardDart(e))
	ng, err := NewGraph(g.N(), edges, rot)
	if err != nil {
		return nil, 0, fmt.Errorf("planar: insertion broke the embedding: %w", err)
	}
	if ng.Faces().NumFaces() != fd.NumFaces()+1 {
		return nil, 0, fmt.Errorf("planar: insertion did not split face %d", f)
	}
	return ng, e, nil
}
