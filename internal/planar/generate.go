package planar

import (
	"math/rand/v2"
)

// NewRand returns the package's canonical deterministic generator for a
// 64-bit seed: a PCG stream whose output is fully determined by the seed.
// All seeded entry points (graph generators, benchmark repeats) derive their
// randomness through it, so a seed identifies one instance across the whole
// toolkit.
func NewRand(seed int64) *rand.Rand {
	// The second PCG word is a fixed odd constant (splitmix64's increment):
	// distinct seeds give distinct, well-mixed streams.
	return rand.New(rand.NewPCG(uint64(seed), 0x9e3779b97f4a7c15))
}

// Grid returns a rows x cols grid graph with unit weights and capacities.
// Grid graphs are the paper's canonical bounded-diameter planar family: the
// hop diameter is rows+cols-2, so sweeping the aspect ratio at fixed n sweeps
// D independently of n.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("planar: Grid needs at least two vertices")
	}
	id := func(r, c int) int { return r*cols + c }
	var edges []Edge
	right := make([]int, rows*cols) // edge id of (r,c)-(r,c+1), -1 if none
	down := make([]int, rows*cols)  // edge id of (r,c)-(r+1,c), -1 if none
	for i := range right {
		right[i], down[i] = -1, -1
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				right[id(r, c)] = len(edges)
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1), Weight: 1, Cap: 1})
			}
			if r+1 < rows {
				down[id(r, c)] = len(edges)
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c), Weight: 1, Cap: 1})
			}
		}
	}
	rot := make([][]Dart, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			// Clockwise: up, right, down, left.
			if r > 0 {
				rot[v] = append(rot[v], BackwardDart(down[id(r-1, c)]))
			}
			if c+1 < cols {
				rot[v] = append(rot[v], ForwardDart(right[v]))
			}
			if r+1 < rows {
				rot[v] = append(rot[v], ForwardDart(down[v]))
			}
			if c > 0 {
				rot[v] = append(rot[v], BackwardDart(right[id(r, c-1)]))
			}
		}
	}
	return MustGraph(rows*cols, edges, rot)
}

// Cylinder returns a rows x cols cylindrical grid: each row is a cycle of
// length cols (cols >= 3) and consecutive rows are joined by radial edges.
// Embedded as an annulus; diameter is about rows + cols/2.
func Cylinder(rows, cols int) *Graph {
	if rows < 1 || cols < 3 {
		panic("planar: Cylinder needs rows >= 1, cols >= 3")
	}
	id := func(r, c int) int { return r*cols + c }
	var edges []Edge
	ring := make([]int, rows*cols) // edge id of (r,c)-(r,(c+1)%cols)
	down := make([]int, rows*cols) // edge id of (r,c)-(r+1,c), -1 if none
	for i := range down {
		down[i] = -1
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			ring[id(r, c)] = len(edges)
			edges = append(edges, Edge{U: id(r, c), V: id(r, (c+1)%cols), Weight: 1, Cap: 1})
		}
	}
	for r := 0; r+1 < rows; r++ {
		for c := 0; c < cols; c++ {
			down[id(r, c)] = len(edges)
			edges = append(edges, Edge{U: id(r, c), V: id(r+1, c), Weight: 1, Cap: 1})
		}
	}
	rot := make([][]Dart, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			// Clockwise around a vertex of the annulus: inner ring (up),
			// next on circle (right), outer ring (down), previous (left).
			if r > 0 {
				rot[v] = append(rot[v], BackwardDart(down[id(r-1, c)]))
			}
			rot[v] = append(rot[v], ForwardDart(ring[v]))
			if r+1 < rows {
				rot[v] = append(rot[v], ForwardDart(down[v]))
			}
			rot[v] = append(rot[v], BackwardDart(ring[id(r, (c+cols-1)%cols)]))
		}
	}
	return MustGraph(rows*cols, edges, rot)
}

// StackedTriangulation returns a random maximal planar graph ("stacked" /
// Apollonian) with n >= 3 vertices: starting from a triangle, each new vertex
// is inserted into a uniformly random face and connected to its three
// corners. Useful as a high-degree, low-diameter counterpart to grids.
func StackedTriangulation(n int, rng *rand.Rand) *Graph {
	if n < 3 {
		panic("planar: StackedTriangulation needs n >= 3")
	}
	edges := []Edge{
		{U: 0, V: 1, Weight: 1, Cap: 1},
		{U: 1, V: 2, Weight: 1, Cap: 1},
		{U: 2, V: 0, Weight: 1, Cap: 1},
	}
	rot := make([][]Dart, n)
	rot[0] = []Dart{ForwardDart(0), BackwardDart(2)}
	rot[1] = []Dart{ForwardDart(1), BackwardDart(0)}
	rot[2] = []Dart{ForwardDart(2), BackwardDart(1)}

	tail := func(d Dart) int {
		e := edges[EdgeOf(d)]
		if IsForward(d) {
			return e.U
		}
		return e.V
	}
	insertAfter := func(after, nd Dart) {
		v := tail(after)
		for i, x := range rot[v] {
			if x == after {
				rot[v] = append(rot[v], NoDart)
				copy(rot[v][i+2:], rot[v][i+1:])
				rot[v][i+1] = nd
				return
			}
		}
		panic("planar: dart not found in rotation")
	}

	// faces holds interior triangles as dart triples (d1,d2,d3) where
	// head(d1)=tail(d2) etc. One of the two initial faces is kept "outer"
	// and never subdivided, so the outer face stays a triangle.
	faces := [][3]Dart{{ForwardDart(0), ForwardDart(1), ForwardDart(2)}}

	for w := 3; w < n; w++ {
		fi := rng.IntN(len(faces))
		f := faces[fi]
		d1, d2, d3 := f[0], f[1], f[2]
		a, b, c := tail(d1), tail(d2), tail(d3)
		// New edges (w,a), (w,b), (w,c); use forward darts w->x.
		ea := len(edges)
		edges = append(edges, Edge{U: w, V: a, Weight: 1, Cap: 1})
		eb := len(edges)
		edges = append(edges, Edge{U: w, V: b, Weight: 1, Cap: 1})
		ec := len(edges)
		edges = append(edges, Edge{U: w, V: c, Weight: 1, Cap: 1})
		// Face-successor constraints (see package tests): insert the dart
		// x->w immediately after Rev(d_prev) in x's rotation.
		insertAfter(Rev(d1), BackwardDart(eb)) // at b: b->w after rev(d1)
		insertAfter(Rev(d2), BackwardDart(ec)) // at c: c->w after rev(d2)
		insertAfter(Rev(d3), BackwardDart(ea)) // at a: a->w after rev(d3)
		rot[w] = []Dart{ForwardDart(eb), ForwardDart(ea), ForwardDart(ec)}
		// Replace face (d1,d2,d3) by (d1, b->w, w->a), (d2, c->w, w->b),
		// (d3, a->w, w->c).
		faces[fi] = [3]Dart{d1, BackwardDart(eb), ForwardDart(ea)}
		faces = append(faces,
			[3]Dart{d2, BackwardDart(ec), ForwardDart(eb)},
			[3]Dart{d3, BackwardDart(ea), ForwardDart(ec)})
	}
	return MustGraph(n, edges, rot)
}

// NestedTriangles returns the classic "nested triangles" planar graph with
// k concentric triangles (n = 3k): consecutive triangles joined corner to
// corner. Its diameter is Θ(n), the worst case for D-parameterized planar
// algorithms, complementing the Θ(log n)-diameter triangulations.
func NestedTriangles(k int) *Graph {
	if k < 1 {
		panic("planar: NestedTriangles needs k >= 1")
	}
	var edges []Edge
	ring := make([][3]int, k)  // edge ids of triangle t
	spoke := make([][3]int, k) // edge ids joining triangle t to t+1
	for t := 0; t < k; t++ {
		base := 3 * t
		for i := 0; i < 3; i++ {
			ring[t][i] = len(edges)
			edges = append(edges, Edge{U: base + i, V: base + (i+1)%3, Weight: 1, Cap: 1})
		}
		if t+1 < k {
			for i := 0; i < 3; i++ {
				spoke[t][i] = len(edges)
				edges = append(edges, Edge{U: base + i, V: base + 3 + i, Weight: 1, Cap: 1})
			}
		}
	}
	rot := make([][]Dart, 3*k)
	for t := 0; t < k; t++ {
		base := 3 * t
		for i := 0; i < 3; i++ {
			v := base + i
			// Clockwise: ring edge out, spoke inward (to t-1), ring edge in,
			// spoke outward (to t+1).
			rot[v] = append(rot[v], ForwardDart(ring[t][i]))
			if t > 0 {
				rot[v] = append(rot[v], BackwardDart(spoke[t-1][i]))
			}
			rot[v] = append(rot[v], BackwardDart(ring[t][(i+2)%3]))
			if t+1 < k {
				rot[v] = append(rot[v], ForwardDart(spoke[t][i]))
			}
		}
	}
	return MustGraph(3*k, edges, rot)
}

// BoustrophedonGrid returns a rows x cols grid whose rows alternate
// direction (even rows eastbound, odd rows westbound) and whose columns
// alternate likewise — a strongly connected planar orientation, the
// canonical non-trivial input for directed global minimum cut.
func BoustrophedonGrid(rows, cols int) *Graph {
	g := Grid(rows, cols)
	edges := g.Edges()
	flip := make([]bool, g.M())
	for e := range edges {
		u, v := edges[e].U, edges[e].V
		if u/cols == v/cols {
			// Row edge: flip on odd rows (westbound).
			flip[e] = (u/cols)%2 == 1
		} else {
			// Column edge between rows r and r+1 at column c: downward only
			// at the snake's turn column (last column after an eastbound
			// row, first column after a westbound row); upward elsewhere,
			// providing the return paths.
			r, c := u/cols, u%cols
			down := (r%2 == 0 && c == cols-1) || (r%2 == 1 && c == 0)
			flip[e] = !down
		}
		if flip[e] {
			edges[e].U, edges[e].V = edges[e].V, edges[e].U
		}
	}
	rot := make([][]Dart, g.N())
	for v := range rot {
		rot[v] = make([]Dart, len(g.Rotation(v)))
		for i, d := range g.Rotation(v) {
			if flip[EdgeOf(d)] {
				d = Rev(d)
			}
			rot[v][i] = d
		}
	}
	return MustGraph(g.N(), edges, rot)
}

// WithEdgeAttrs returns a copy of g whose edge weights/capacities are
// rewritten by fn; the embedding is shared structure-wise (rotations are
// copied). The endpoints of each edge must not change.
func (g *Graph) WithEdgeAttrs(fn func(e int, old Edge) Edge) *Graph {
	edges := make([]Edge, g.M())
	for e := range edges {
		ne := fn(e, g.edges[e])
		ne.U, ne.V = g.edges[e].U, g.edges[e].V
		edges[e] = ne
	}
	return MustGraph(g.n, edges, g.rot)
}

// WithRandomWeights returns a copy of g with integer weights drawn uniformly
// from [lo, hi] and capacities from [capLo, capHi].
func WithRandomWeights(g *Graph, rng *rand.Rand, lo, hi, capLo, capHi int64) *Graph {
	return g.WithEdgeAttrs(func(_ int, old Edge) Edge {
		old.Weight = lo + rng.Int64N(hi-lo+1)
		old.Cap = capLo + rng.Int64N(capHi-capLo+1)
		return old
	})
}

// WithRandomDirections returns a copy of g where each edge's direction is
// flipped with probability 1/2 (rotations are rewritten consistently), giving
// directed planar instances for the directed algorithms.
func WithRandomDirections(g *Graph, rng *rand.Rand) *Graph {
	flip := make([]bool, g.M())
	edges := make([]Edge, g.M())
	for e := range edges {
		edges[e] = g.edges[e]
		if rng.IntN(2) == 0 {
			flip[e] = true
			edges[e].U, edges[e].V = edges[e].V, edges[e].U
		}
	}
	rot := make([][]Dart, g.n)
	for v := range rot {
		rot[v] = make([]Dart, len(g.rot[v]))
		for i, d := range g.rot[v] {
			if flip[EdgeOf(d)] {
				d = Rev(d)
			}
			rot[v][i] = d
		}
	}
	return MustGraph(g.n, edges, rot)
}

// RemoveRandomEdges returns a connected spanning subgraph of g obtained by
// deleting up to k random edges while preserving connectivity. Deleting an
// edge merges its two faces, so the result has larger, irregular faces —
// useful for exercising face-part bookkeeping.
func RemoveRandomEdges(g *Graph, rng *rand.Rand, k int) *Graph {
	keep := make([]bool, g.M())
	for i := range keep {
		keep[i] = true
	}
	kept := g.M()
	order := rng.Perm(g.M())
	for _, e := range order {
		if k == 0 {
			break
		}
		if kept == g.n-1 {
			break
		}
		keep[e] = false
		if connectedWithout(g, keep) {
			kept--
			k--
		} else {
			keep[e] = true
		}
	}
	sub, _ := SubgraphByEdges(g, keep)
	return sub
}

func connectedWithout(g *Graph, keep []bool) bool {
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range g.rot[v] {
			if !keep[EdgeOf(d)] {
				continue
			}
			u := g.Head(d)
			if !seen[u] {
				seen[u] = true
				cnt++
				stack = append(stack, u)
			}
		}
	}
	return cnt == g.n
}

// SubgraphByEdges returns the embedded subgraph of g induced by the kept
// edges (all vertices retained; the result must remain connected) together
// with the mapping from old edge ids to new edge ids (-1 for dropped edges).
func SubgraphByEdges(g *Graph, keep []bool) (*Graph, []int) {
	edgeMap := make([]int, g.M())
	var edges []Edge
	for e := range edgeMap {
		if keep[e] {
			edgeMap[e] = len(edges)
			edges = append(edges, g.edges[e])
		} else {
			edgeMap[e] = -1
		}
	}
	rot := make([][]Dart, g.n)
	for v := range rot {
		for _, d := range g.rot[v] {
			ne := edgeMap[EdgeOf(d)]
			if ne == -1 {
				continue
			}
			nd := ForwardDart(ne)
			if !IsForward(d) {
				nd = BackwardDart(ne)
			}
			rot[v] = append(rot[v], nd)
		}
	}
	return MustGraph(g.n, edges, rot), edgeMap
}
