package planar

import (
	"testing"
)

func TestInsertEdgeInOuterFace(t *testing.T) {
	g := Grid(3, 4)
	fd := g.Faces()
	outer := fd.LargestFace()
	// Opposite corners lie on the outer face.
	ng, e, err := InsertEdgeInFace(g, 0, 11, outer, 7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ng.M() != g.M()+1 {
		t.Fatalf("m=%d want %d", ng.M(), g.M()+1)
	}
	ed := ng.Edge(e)
	if ed.U != 0 || ed.V != 11 || ed.Weight != 7 || ed.Cap != 9 {
		t.Fatalf("edge attrs wrong: %+v", ed)
	}
	// The insertion splits exactly one face.
	if ng.Faces().NumFaces() != fd.NumFaces()+1 {
		t.Fatalf("faces=%d want %d", ng.Faces().NumFaces(), fd.NumFaces()+1)
	}
	// The two new faces are the two sides of the new edge.
	f1 := ng.Faces().FaceOf(ForwardDart(e))
	f2 := ng.Faces().FaceOf(BackwardDart(e))
	if f1 == f2 {
		t.Fatal("new edge has the same face on both sides")
	}
	// Original graph untouched.
	if g.M() != 12+5 {
		t.Fatalf("original mutated: m=%d", g.M())
	}
}

func TestInsertEdgeInInteriorFace(t *testing.T) {
	g := Grid(3, 3)
	fd := g.Faces()
	// Interior quad containing vertices 0,1,3,4: find the face shared by 0
	// and 4 that is not the outer face.
	var target = -1
	for _, f := range g.CommonFaces(0, 4) {
		if f != fd.LargestFace() {
			target = f
		}
	}
	if target == -1 {
		t.Fatal("no interior common face")
	}
	ng, _, err := InsertEdgeInFace(g, 0, 4, target, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertEdgeRejectsWrongFace(t *testing.T) {
	g := Grid(3, 3)
	fd := g.Faces()
	outer := fd.LargestFace()
	// Center vertex 4 is not on the outer face.
	if _, _, err := InsertEdgeInFace(g, 0, 4, outer, 1, 1); err == nil {
		t.Fatal("expected error: vertex not on face")
	}
}

func TestInsertEdgeRejectsSelfLoop(t *testing.T) {
	g := Grid(2, 2)
	if _, _, err := InsertEdgeInFace(g, 1, 1, 0, 1, 1); err == nil {
		t.Fatal("expected self-loop rejection")
	}
}

func TestInsertEdgeRandomPairs(t *testing.T) {
	rng := NewRand(9)
	g := StackedTriangulation(30, rng)
	fd := g.Faces()
	for f := 0; f < fd.NumFaces(); f++ {
		cyc := fd.Cycle(f)
		u := g.Tail(cyc[0])
		v := g.Tail(cyc[1])
		if u == v {
			continue
		}
		ng, _, err := InsertEdgeInFace(g, u, v, f, 1, 1)
		if err != nil {
			t.Fatalf("face %d (%d,%d): %v", f, u, v, err)
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("face %d: %v", f, err)
		}
	}
}
