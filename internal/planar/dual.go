package planar

// Dual is a structural view of the dual graph G* of an embedded planar graph.
//
// G* has a node per face of G and, for every dart d of G, a dual dart d*
// oriented from the face containing d to the face containing Rev(d). The two
// dual darts of an edge are reversals of each other, mirroring the primal
// dart algebra, so Dart values index both primal and dual darts.
//
// With the paper's convention, the dual of a directed edge e is the dual dart
// of e's forward dart: it crosses e from one side to the other; whether that
// side is geometrically "left" or "right" depends only on the global
// handedness of the rotation system and is consistent across the graph.
//
// G* may be a multigraph (two faces sharing several edges) and may contain
// self-loops (bridges); algorithms that need a simple graph deactivate
// parallels per Lemma 4.15.
type Dual struct {
	g  *Graph
	fd *FaceData
}

// Dual returns the dual view of g.
func (g *Graph) Dual() *Dual { return &Dual{g: g, fd: g.Faces()} }

// NumNodes returns the number of dual nodes (faces of G).
func (du *Dual) NumNodes() int { return du.fd.NumFaces() }

// NumArcs returns the number of dual darts (= number of primal darts).
func (du *Dual) NumArcs() int { return du.g.NumDarts() }

// Tail returns the dual node the dual dart of d leaves: the face containing d.
func (du *Dual) Tail(d Dart) int { return du.fd.FaceOf(d) }

// Head returns the dual node the dual dart of d enters: the face containing
// Rev(d).
func (du *Dual) Head(d Dart) int { return du.fd.FaceOf(Rev(d)) }

// OutDarts returns the darts whose dual darts leave face f (the boundary
// cycle of f). The returned slice must not be modified.
func (du *Dual) OutDarts(f int) []Dart { return du.fd.Cycle(f) }

// Graph returns the underlying primal graph.
func (du *Dual) Graph() *Graph { return du.g }

// FaceData returns the underlying face structure.
func (du *Dual) FaceData() *FaceData { return du.fd }

// DualArc is an explicit arc of G* (used by centralized baselines).
type DualArc struct {
	Dart Dart  // the primal dart whose dual this arc is
	To   int   // head dual node
	Len  int64 // length assigned by the caller's per-dart length vector
}

// AdjacencyList materializes G* as an adjacency list under the given per-dart
// length vector (indexed by primal Dart). Both darts of every edge yield an
// arc; callers that want a one-arc-per-edge dual pass a length vector with
// +inf sentinels and filter.
func (du *Dual) AdjacencyList(lengths []int64) [][]DualArc {
	adj := make([][]DualArc, du.NumNodes())
	for f := 0; f < du.NumNodes(); f++ {
		cyc := du.OutDarts(f)
		adj[f] = make([]DualArc, 0, len(cyc))
		for _, d := range cyc {
			adj[f] = append(adj[f], DualArc{Dart: d, To: du.Head(d), Len: lengths[d]})
		}
	}
	return adj
}
