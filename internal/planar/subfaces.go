package planar

// SubFaces is the face structure of an embedded subgraph: the orbits of the
// face-successor permutation induced by restricting every rotation to a
// subset of the edges. Orbits correspond to faces of the sub-embedding; an
// orbit that does not coincide with a face of the full graph walks a region
// merged from several faces (a "hole" plus face fragments, in the BDD's
// vocabulary).
type SubFaces struct {
	g      *Graph
	edgeIn []bool
	faceOf []int // per dart; -1 if the edge is outside the subgraph
	cycles [][]Dart
	next   []Dart // induced face successor per dart (NoDart outside)
}

// NewSubFaces computes the face structure of the subgraph of g induced by
// the kept edges. The subgraph must be non-empty; connectivity is not
// required here (callers that need it check separately).
func NewSubFaces(g *Graph, edgeIn []bool) *SubFaces {
	sf := &SubFaces{
		g:      g,
		edgeIn: edgeIn,
		faceOf: make([]int, g.NumDarts()),
		next:   make([]Dart, g.NumDarts()),
	}
	for d := range sf.faceOf {
		sf.faceOf[d] = -1
		sf.next[d] = NoDart
	}
	// Induced rotations: per vertex, kept darts in rotation order.
	inducedNext := func(d Dart) Dart {
		// Successor of Rev(d) at Head(d), skipping dropped edges.
		x := Rev(d)
		for {
			x = g.NextInRotation(x)
			if edgeIn[EdgeOf(x)] {
				return x
			}
		}
	}
	for e := 0; e < g.M(); e++ {
		if !edgeIn[e] {
			continue
		}
		for _, d := range []Dart{ForwardDart(e), BackwardDart(e)} {
			if sf.faceOf[d] != -1 {
				continue
			}
			f := len(sf.cycles)
			var cyc []Dart
			x := d
			for {
				sf.faceOf[x] = f
				nx := inducedNext(x)
				sf.next[x] = nx
				cyc = append(cyc, x)
				x = nx
				if x == d {
					break
				}
			}
			sf.cycles = append(sf.cycles, cyc)
		}
	}
	return sf
}

// NumFaces returns the number of sub-embedding faces (orbits).
func (sf *SubFaces) NumFaces() int { return len(sf.cycles) }

// FaceOf returns the orbit containing dart d (-1 if d's edge is dropped).
func (sf *SubFaces) FaceOf(d Dart) int { return sf.faceOf[d] }

// Cycle returns the boundary darts of orbit f. Must not be modified.
func (sf *SubFaces) Cycle(f int) []Dart { return sf.cycles[f] }

// Next returns the induced face successor of d.
func (sf *SubFaces) Next(d Dart) Dart { return sf.next[d] }

// EdgeIn reports whether edge e is in the subgraph.
func (sf *SubFaces) EdgeIn(e int) bool { return sf.edgeIn[e] }

// Graph returns the underlying full graph.
func (sf *SubFaces) Graph() *Graph { return sf.g }
