// Package planar provides embedded planar graphs: rotation systems, dart
// algebra, face traversal, dual graphs and planar graph generators.
//
// The representation follows the conventions of the centralized planar-graph
// literature used by the paper (Klein–Mozes style): every undirected edge e
// is represented by two darts, a forward dart 2e oriented U(e) -> V(e) and a
// backward dart 2e+1 oriented V(e) -> U(e). A combinatorial embedding is a
// rotation system: for each vertex, the cyclic order of its outgoing darts.
// Faces are the orbits of the face-successor permutation; by Euler's formula
// a connected rotation system is planar iff n - m + f = 2.
package planar

// Dart identifies one of the two orientations of an edge. The dart 2e is the
// forward dart of edge e (oriented from Edge.U to Edge.V); 2e+1 is its
// reversal.
type Dart int

// NoDart is the sentinel for "no dart" (e.g. absent parent pointers).
const NoDart Dart = -1

// Rev returns the reversal of d (the same edge traversed the other way).
func Rev(d Dart) Dart { return d ^ 1 }

// EdgeOf returns the edge the dart belongs to.
func EdgeOf(d Dart) int { return int(d) >> 1 }

// IsForward reports whether d is the forward dart of its edge (oriented
// Edge.U -> Edge.V).
func IsForward(d Dart) bool { return d&1 == 0 }

// ForwardDart returns the forward dart of edge e.
func ForwardDart(e int) Dart { return Dart(2 * e) }

// BackwardDart returns the backward dart of edge e.
func BackwardDart(e int) Dart { return Dart(2*e + 1) }
