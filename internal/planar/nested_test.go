package planar

import "testing"

func TestNestedTriangles(t *testing.T) {
	for _, k := range []int{1, 2, 3, 6, 12} {
		g := NestedTriangles(k)
		checkEuler(t, g, "nested")
		if g.N() != 3*k {
			t.Fatalf("k=%d: n=%d", k, g.N())
		}
		wantM := 3*k + 3*(k-1)
		if g.M() != wantM {
			t.Fatalf("k=%d: m=%d want %d", k, g.M(), wantM)
		}
		// Diameter grows linearly with k.
		if k >= 3 {
			if d := g.Diameter(); d < k-1 {
				t.Fatalf("k=%d: diameter=%d too small", k, d)
			}
		}
	}
}
