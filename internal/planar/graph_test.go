package planar

import (
	"testing"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	edges := []Edge{{U: 0, V: 1, Weight: 1, Cap: 1}, {U: 1, V: 2, Weight: 1, Cap: 1}, {U: 2, V: 0, Weight: 1, Cap: 1}}
	rot := [][]Dart{
		{ForwardDart(0), BackwardDart(2)},
		{ForwardDart(1), BackwardDart(0)},
		{ForwardDart(2), BackwardDart(1)},
	}
	g, err := NewGraph(3, edges, rot)
	if err != nil {
		t.Fatalf("triangle: %v", err)
	}
	return g
}

func TestTriangleBasics(t *testing.T) {
	g := triangle(t)
	if g.N() != 3 || g.M() != 3 || g.NumDarts() != 6 {
		t.Fatalf("n=%d m=%d darts=%d", g.N(), g.M(), g.NumDarts())
	}
	if g.Faces().NumFaces() != 2 {
		t.Fatalf("faces=%d want 2", g.Faces().NumFaces())
	}
	if g.Tail(ForwardDart(0)) != 0 || g.Head(ForwardDart(0)) != 1 {
		t.Fatal("forward dart endpoints wrong")
	}
	if g.Tail(BackwardDart(0)) != 1 || g.Head(BackwardDart(0)) != 0 {
		t.Fatal("backward dart endpoints wrong")
	}
}

func TestDartAlgebra(t *testing.T) {
	for e := 0; e < 10; e++ {
		f, b := ForwardDart(e), BackwardDart(e)
		if Rev(f) != b || Rev(b) != f {
			t.Fatalf("rev broken for edge %d", e)
		}
		if EdgeOf(f) != e || EdgeOf(b) != e {
			t.Fatalf("edgeOf broken for edge %d", e)
		}
		if !IsForward(f) || IsForward(b) {
			t.Fatalf("isForward broken for edge %d", e)
		}
	}
}

func TestNewGraphRejectsBadRotation(t *testing.T) {
	edges := []Edge{{U: 0, V: 1}}
	// Dart listed at wrong vertex.
	_, err := NewGraph(2, edges, [][]Dart{{ForwardDart(0), BackwardDart(0)}, {}})
	if err == nil {
		t.Fatal("expected error for dart at wrong vertex")
	}
	// Missing dart.
	_, err = NewGraph(2, edges, [][]Dart{{ForwardDart(0)}, {}})
	if err == nil {
		t.Fatal("expected error for missing dart")
	}
	// Duplicate dart.
	_, err = NewGraph(2, edges, [][]Dart{{ForwardDart(0)}, {BackwardDart(0), BackwardDart(0)}})
	if err == nil {
		t.Fatal("expected error for duplicate dart")
	}
}

func TestNewGraphRejectsDisconnected(t *testing.T) {
	edges := []Edge{{U: 0, V: 1}}
	_, err := NewGraph(3, edges, [][]Dart{{ForwardDart(0)}, {BackwardDart(0)}, {}})
	if err == nil {
		t.Fatal("expected error for disconnected graph")
	}
}

func checkEuler(t *testing.T, g *Graph, name string) {
	t.Helper()
	f := g.Faces().NumFaces()
	if g.N()-g.M()+f != 2 {
		t.Fatalf("%s: Euler failed n=%d m=%d f=%d", name, g.N(), g.M(), f)
	}
	// Every dart on exactly one face, and cycles are closed orbits.
	fd := g.Faces()
	seen := make([]int, g.NumDarts())
	for fi := 0; fi < fd.NumFaces(); fi++ {
		cyc := fd.Cycle(fi)
		for i, d := range cyc {
			seen[d]++
			if fd.FaceOf(d) != fi {
				t.Fatalf("%s: faceOf mismatch", name)
			}
			next := cyc[(i+1)%len(cyc)]
			if g.FaceSuccessor(d) != next {
				t.Fatalf("%s: cycle not an orbit of FaceSuccessor", name)
			}
			if g.FacePredecessor(next) != d {
				t.Fatalf("%s: FacePredecessor does not invert FaceSuccessor", name)
			}
		}
	}
	for d, c := range seen {
		if c != 1 {
			t.Fatalf("%s: dart %d on %d faces", name, d, c)
		}
	}
}

func TestGridEuler(t *testing.T) {
	for _, dims := range [][2]int{{1, 2}, {2, 2}, {3, 3}, {4, 7}, {10, 3}, {6, 6}} {
		g := Grid(dims[0], dims[1])
		checkEuler(t, g, "grid")
		wantFaces := (dims[0]-1)*(dims[1]-1) + 1
		if g.Faces().NumFaces() != wantFaces {
			t.Fatalf("grid %v: faces=%d want %d", dims, g.Faces().NumFaces(), wantFaces)
		}
	}
}

func TestGridDiameter(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 5}, {4, 4}} {
		g := Grid(dims[0], dims[1])
		want := dims[0] + dims[1] - 2
		if d := g.Diameter(); d != want {
			t.Fatalf("grid %v diameter=%d want %d", dims, d, want)
		}
	}
}

func TestCylinderEuler(t *testing.T) {
	for _, dims := range [][2]int{{1, 3}, {2, 4}, {3, 5}, {5, 8}} {
		g := Cylinder(dims[0], dims[1])
		checkEuler(t, g, "cylinder")
	}
}

func TestStackedTriangulationEuler(t *testing.T) {
	rng := NewRand(1)
	for _, n := range []int{3, 4, 5, 10, 50, 200} {
		g := StackedTriangulation(n, rng)
		checkEuler(t, g, "stacked")
		if g.M() != 3*n-6 {
			t.Fatalf("stacked n=%d: m=%d want %d", n, g.M(), 3*n-6)
		}
		// All faces must be triangles in a maximal planar graph.
		fd := g.Faces()
		for f := 0; f < fd.NumFaces(); f++ {
			if fd.Len(f) != 3 {
				t.Fatalf("stacked n=%d: face %d has %d darts", n, f, fd.Len(f))
			}
		}
	}
}

func TestRemoveRandomEdges(t *testing.T) {
	rng := NewRand(7)
	g := Grid(6, 6)
	sub := RemoveRandomEdges(g, rng, 10)
	checkEuler(t, sub, "subgraph")
	if !sub.Connected() {
		t.Fatal("subgraph disconnected")
	}
	if sub.M() >= g.M() {
		t.Fatal("no edges removed")
	}
}

func TestWithRandomDirections(t *testing.T) {
	rng := NewRand(3)
	g := Grid(4, 5)
	dg := WithRandomDirections(g, rng)
	checkEuler(t, dg, "directed grid")
	if dg.N() != g.N() || dg.M() != g.M() {
		t.Fatal("direction flip changed size")
	}
	// Undirected support must be identical.
	for e := 0; e < g.M(); e++ {
		a, b := g.Edge(e), dg.Edge(e)
		sameWay := a.U == b.U && a.V == b.V
		flipped := a.U == b.V && a.V == b.U
		if !sameWay && !flipped {
			t.Fatalf("edge %d endpoints changed", e)
		}
	}
}

func TestWithEdgeAttrs(t *testing.T) {
	g := Grid(3, 3)
	g2 := g.WithEdgeAttrs(func(e int, old Edge) Edge {
		old.Weight = int64(e + 10)
		old.Cap = int64(2*e + 1)
		// Attempt to change endpoints must be ignored.
		old.U, old.V = 0, 0
		return old
	})
	for e := 0; e < g2.M(); e++ {
		if g2.Edge(e).Weight != int64(e+10) || g2.Edge(e).Cap != int64(2*e+1) {
			t.Fatalf("attrs not applied at %d", e)
		}
		if g2.Edge(e).U != g.Edge(e).U || g2.Edge(e).V != g.Edge(e).V {
			t.Fatalf("endpoints changed at %d", e)
		}
	}
}

func TestBoustrophedonGridStronglyConnected(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 3}, {4, 6}, {5, 5}, {6, 4}} {
		g := BoustrophedonGrid(dims[0], dims[1])
		checkEuler(t, g, "boustrophedon")
		// Directed reachability from every vertex must cover the graph.
		for src := 0; src < g.N(); src++ {
			seen := make([]bool, g.N())
			seen[src] = true
			stack := []int{src}
			cnt := 1
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, d := range g.Rotation(v) {
					if !IsForward(d) {
						continue
					}
					u := g.Head(d)
					if !seen[u] {
						seen[u] = true
						cnt++
						stack = append(stack, u)
					}
				}
			}
			if cnt != g.N() {
				t.Fatalf("grid %v not strongly connected from %d (%d/%d)", dims, src, cnt, g.N())
			}
		}
	}
}

func TestBFS(t *testing.T) {
	g := Grid(4, 6)
	b := g.BFS(0)
	if b.Depth != 4+6-2 {
		t.Fatalf("depth=%d want %d", b.Depth, 8)
	}
	for v := 0; v < g.N(); v++ {
		r, c := v/6, v%6
		if b.Dist[v] != r+c {
			t.Fatalf("dist[%d]=%d want %d", v, b.Dist[v], r+c)
		}
		if v != 0 {
			p := b.Parent[v]
			if g.Head(p) != v || b.Dist[g.Tail(p)] != b.Dist[v]-1 {
				t.Fatalf("parent pointer wrong at %d", v)
			}
		}
	}
	if len(b.Order) != g.N() {
		t.Fatal("order incomplete")
	}
}

func TestCommonFaces(t *testing.T) {
	g := Grid(3, 3)
	// Corner 0 and its horizontal neighbor 1 share two faces (one interior
	// quad and the outer face).
	cf := g.CommonFaces(0, 1)
	if len(cf) != 2 {
		t.Fatalf("common faces of adjacent corner pair = %d, want 2", len(cf))
	}
	// Opposite corners 0 and 8 share only the outer face.
	cf = g.CommonFaces(0, 8)
	if len(cf) != 1 {
		t.Fatalf("common faces of opposite corners = %d, want 1", len(cf))
	}
}

func TestDualStructure(t *testing.T) {
	g := Grid(3, 3)
	du := g.Dual()
	if du.NumNodes() != 5 {
		t.Fatalf("dual nodes=%d want 5", du.NumNodes())
	}
	// Each dual dart leaves the face of its dart and enters the face of the
	// reversal; reversal symmetry must hold.
	for d := Dart(0); int(d) < g.NumDarts(); d++ {
		if du.Tail(d) != du.Head(Rev(d)) || du.Head(d) != du.Tail(Rev(d)) {
			t.Fatalf("dual reversal symmetry broken at dart %d", d)
		}
	}
	// Sum of face boundary lengths = number of darts.
	total := 0
	for f := 0; f < du.NumNodes(); f++ {
		total += len(du.OutDarts(f))
	}
	if total != g.NumDarts() {
		t.Fatalf("boundary darts=%d want %d", total, g.NumDarts())
	}
}
