package planar

import (
	"testing"
	"testing/quick"
)

// randomPlanar draws a random connected embedded planar graph from the
// generator families, sized by the quick-check inputs.
func randomPlanar(seed int64, kind, size int) *Graph {
	rng := NewRand(seed)
	n := 3 + size%40
	switch kind % 4 {
	case 0:
		r := 2 + size%6
		c := 2 + (size/7)%6
		return Grid(r, c)
	case 1:
		r := 1 + size%4
		c := 3 + (size/5)%6
		return Cylinder(r, c)
	case 2:
		return StackedTriangulation(n, rng)
	default:
		g := StackedTriangulation(n, rng)
		return RemoveRandomEdges(g, rng, n/3)
	}
}

func TestQuickEulerHolds(t *testing.T) {
	prop := func(seed int64, kind, size uint8) bool {
		g := randomPlanar(seed, int(kind), int(size))
		return g.N()-g.M()+g.Faces().NumFaces() == 2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFacePermutationIsBijection(t *testing.T) {
	prop := func(seed int64, kind, size uint8) bool {
		g := randomPlanar(seed, int(kind), int(size))
		seen := make([]bool, g.NumDarts())
		for d := Dart(0); int(d) < g.NumDarts(); d++ {
			s := g.FaceSuccessor(d)
			if seen[s] {
				return false
			}
			seen[s] = true
			if g.FacePredecessor(s) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDualDegreeSum(t *testing.T) {
	// Handshake lemma in the dual: sum of face lengths == 2m, and each
	// primal edge's two darts sit on the faces that the dual edge connects.
	prop := func(seed int64, kind, size uint8) bool {
		g := randomPlanar(seed, int(kind), int(size))
		du := g.Dual()
		total := 0
		for f := 0; f < du.NumNodes(); f++ {
			total += len(du.OutDarts(f))
		}
		if total != 2*g.M() {
			return false
		}
		for e := 0; e < g.M(); e++ {
			d := ForwardDart(e)
			if du.Tail(d) != du.Head(Rev(d)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBFSTreeIsShortestPathTree(t *testing.T) {
	prop := func(seed int64, kind, size uint8) bool {
		g := randomPlanar(seed, int(kind), int(size))
		b := g.BFS(0)
		for v := 0; v < g.N(); v++ {
			if b.Dist[v] < 0 {
				return false // connected graphs only
			}
			for _, d := range g.Rotation(v) {
				u := g.Head(d)
				if b.Dist[u] > b.Dist[v]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
