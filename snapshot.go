package planarflow

// Persistent substrate snapshots: the public surface of the persistence
// layer (internal/snapshot). Snapshot serializes the substrates a
// PreparedGraph has built — the BDD and the primal/dual distance
// labelings, the paper's §5 artifact — into a versioned, checksummed
// binary stream; RestorePrepared decodes that stream into a fresh
// PreparedGraph whose queries find every restored substrate warm.
// Restoring costs decode time, not the Õ(D²) construction rounds, which
// is the difference between a warm restart and rebuilding a fleet's
// working set from scratch.

import (
	"errors"
	"fmt"
	"io"

	"planarflow/internal/snapshot"
)

// Snapshot writes the substrates built so far to w in the snapshot
// format (magic, format version, graph fingerprint, per-substrate
// checksummed sections). In-flight builds are excluded until they
// publish; a PreparedGraph with nothing built writes a valid, empty
// snapshot. The encoding is deterministic: equal substrate states
// produce equal bytes.
//
// The snapshot is bound to this graph: RestorePrepared verifies the
// fingerprint and refuses to restore against any other graph.
func (p *PreparedGraph) Snapshot(w io.Writer) error {
	if err := p.art.Export(w); err != nil {
		return fmt.Errorf("planarflow: snapshot: %w", err)
	}
	return nil
}

// RestorePrepared reads a snapshot previously written by
// PreparedGraph.Snapshot and returns a PreparedGraph for gr with every
// snapshotted substrate already built. Answers from the restored graph
// are bit-identical to the original's; restored substrates report their
// original construction cost through Stats and BuildRounds (and Build=0
// on query answers, exactly like any already-warm substrate).
//
// The snapshot must have been taken from a graph equal to gr (same
// vertices, edges, weights, capacities and embedding): a fingerprint
// mismatch returns ErrSnapshotMismatch. Damaged input — truncation,
// checksum failure, version skew, structural corruption — returns an
// error wrapping ErrBadSnapshot. No partial restore is visible on error.
func RestorePrepared(gr *Graph, r io.Reader) (*PreparedGraph, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	if err := p.art.ImportInto(r); err != nil {
		return nil, fmt.Errorf("planarflow: restore: %w", mapSnapshotErr(err))
	}
	return p, nil
}

// mapSnapshotErr folds the internal codec sentinels into the two public
// ones while keeping the detailed message.
func mapSnapshotErr(err error) error {
	switch {
	case errors.Is(err, snapshot.ErrFingerprint):
		return fmt.Errorf("%v: %w", err, ErrSnapshotMismatch)
	case errors.Is(err, snapshot.ErrBadMagic),
		errors.Is(err, snapshot.ErrVersion),
		errors.Is(err, snapshot.ErrChecksum),
		errors.Is(err, snapshot.ErrTruncated),
		errors.Is(err, snapshot.ErrCorrupt):
		return fmt.Errorf("%v: %w", err, ErrBadSnapshot)
	default:
		return err
	}
}
