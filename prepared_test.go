package planarflow

import (
	"reflect"
	"sync"
	"testing"
)

// servingGraph is a directed, weighted instance exercised by the prepared
// tests: random capacities for flow, positive weights for girth/labels.
func servingGraph() *Graph {
	return GridGraph(6, 6).WithRandomAttrs(11, 1, 9, 1, 16)
}

// TestPreparedEquivalence asserts that every headline one-shot result is
// bit-identical to the prepared-path result on the same graph.
func TestPreparedEquivalence(t *testing.T) {
	g := servingGraph()
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	s, tt := 0, g.N()-1

	t.Run("MaxFlow", func(t *testing.T) {
		cold, err1 := MaxFlow(g, s, tt)
		warm, err2 := p.MaxFlow(s, tt)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if cold.Value != warm.Value || cold.Iterations != warm.Iterations ||
			!reflect.DeepEqual(cold.Flow, warm.Flow) {
			t.Fatal("one-shot and prepared max-flow results diverge")
		}
	})
	t.Run("MinSTCut", func(t *testing.T) {
		cold, err1 := MinSTCut(g, s, tt)
		warm, err2 := p.MinSTCut(s, tt)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if cold.Value != warm.Value || !reflect.DeepEqual(cold.Side, warm.Side) ||
			!reflect.DeepEqual(cold.CutEdges, warm.CutEdges) {
			t.Fatal("one-shot and prepared min-cut results diverge")
		}
	})
	t.Run("ApproxFlowAndCut", func(t *testing.T) {
		cold, err1 := ApproxMaxFlowSTPlanar(g, s, tt, 0.1)
		warm, err2 := p.ApproxMaxFlowSTPlanar(s, tt, 0.1)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if cold.Value != warm.Value || !reflect.DeepEqual(cold.Flow, warm.Flow) {
			t.Fatal("approximate flow results diverge")
		}
		ccut, err3 := ApproxMinCutSTPlanar(g, s, tt, 0)
		wcut, err4 := p.ApproxMinCutSTPlanar(s, tt, 0)
		if err3 != nil || err4 != nil {
			t.Fatal(err3, err4)
		}
		if ccut.Value != wcut.Value || !reflect.DeepEqual(ccut.CutEdges, wcut.CutEdges) {
			t.Fatal("approximate cut results diverge")
		}
	})
	t.Run("Girth", func(t *testing.T) {
		cold, err1 := Girth(g)
		warm, err2 := p.Girth()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if cold.Weight != warm.Weight || !reflect.DeepEqual(cold.CycleEdges, warm.CycleEdges) {
			t.Fatal("girth results diverge")
		}
	})
	t.Run("DirectedGirthAndGlobalCut", func(t *testing.T) {
		gd := BoustrophedonGridGraph(5, 5).WithRandomAttrs(7, 1, 20, 1, 1)
		pd, err := Prepare(gd)
		if err != nil {
			t.Fatal(err)
		}
		cold, err1 := DirectedGirth(gd)
		warm, err2 := pd.DirectedGirth()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if cold.Weight != warm.Weight {
			t.Fatal("directed girth results diverge")
		}
		ccut, err3 := GlobalMinCut(gd)
		wcut, err4 := pd.GlobalMinCut()
		if err3 != nil || err4 != nil {
			t.Fatal(err3, err4)
		}
		if ccut.Value != wcut.Value || !reflect.DeepEqual(ccut.Side, wcut.Side) ||
			!reflect.DeepEqual(ccut.CutEdges, wcut.CutEdges) {
			t.Fatal("global min cut results diverge")
		}
	})
	t.Run("DualSSSP", func(t *testing.T) {
		cold, err1 := DualSSSP(g, 1)
		warm, err2 := p.DualSSSP(1)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if cold.NegCycle != warm.NegCycle || !reflect.DeepEqual(cold.Dist, warm.Dist) {
			t.Fatal("dual SSSP results diverge")
		}
	})
	t.Run("OracleVsPreparedDist", func(t *testing.T) {
		o, err := NewDistanceOracle(g)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u += 7 {
			for v := 0; v < g.N(); v += 5 {
				want, err1 := o.Dist(u, v)
				got, err2 := p.Dist(u, v)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if got != want {
					t.Fatalf("dist(%d,%d): prepared %d, oracle %d", u, v, got, want)
				}
			}
		}
	})
}

// TestPreparedAmortization pins the serving contract at the public layer:
// the first query carries Build rounds, later queries of every flavor that
// shares the substrates report Build == 0 while one-shots always pay.
func TestPreparedAmortization(t *testing.T) {
	g := servingGraph()
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.MaxFlow(0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Rounds.Build <= 0 {
		t.Fatalf("first query Build=%d, want > 0", first.Rounds.Build)
	}
	if first.Rounds.Build+first.Rounds.Query != first.Rounds.Total {
		t.Fatal("build/query split does not sum to total")
	}
	second, err := p.MaxFlow(0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if second.Rounds.Build != 0 {
		t.Fatalf("second query Build=%d, want 0", second.Rounds.Build)
	}
	if second.Rounds.Query <= 0 || second.Rounds.Total >= first.Rounds.Total {
		t.Fatalf("second query rounds %+v not cheaper than first %+v", second.Rounds, first.Rounds)
	}
	// MinSTCut shares MaxFlow's tree: no further build cost.
	cut, err := p.MinSTCut(0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Rounds.Build != 0 {
		t.Fatalf("min-cut on warm artifact Build=%d, want 0", cut.Rounds.Build)
	}
	// One-shot always pays the build.
	oneshot, err := MaxFlow(g, 0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if oneshot.Rounds.Build != first.Rounds.Build {
		t.Fatalf("one-shot Build=%d, want %d", oneshot.Rounds.Build, first.Rounds.Build)
	}
	// The cumulative build ledger is visible on the prepared graph.
	if b := p.BuildRounds(); b.Total <= 0 || b.Query != 0 {
		t.Fatalf("BuildRounds=%+v, want positive all-build", b)
	}
}

// TestPreparedConcurrentServing fires parallel MaxFlow/Girth/Dist/DualSSSP
// queries against one PreparedGraph under -race and checks every result
// against the sequential answers.
func TestPreparedConcurrentServing(t *testing.T) {
	g := servingGraph()
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	wantFlow, err := MaxFlow(g, 0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	wantGirth, err := Girth(g)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewDistanceOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	wantSSSP, err := DualSSSP(g, 0)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	errs := make(chan error, workers*4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := p.MaxFlow(0, g.N()-1)
			if err != nil {
				errs <- err
				return
			}
			if res.Value != wantFlow.Value {
				t.Errorf("worker %d: flow %d want %d", w, res.Value, wantFlow.Value)
			}
			gi, err := p.Girth()
			if err != nil {
				errs <- err
				return
			}
			if gi.Weight != wantGirth.Weight {
				t.Errorf("worker %d: girth %d want %d", w, gi.Weight, wantGirth.Weight)
			}
			u, v := w%g.N(), (w*13+5)%g.N()
			d, err := p.Dist(u, v)
			if err != nil {
				errs <- err
				return
			}
			if want, _ := o.Dist(u, v); d != want {
				t.Errorf("worker %d: dist(%d,%d)=%d want %d", w, u, v, d, want)
			}
			ss, err := p.DualSSSP(0)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(ss.Dist, wantSSSP.Dist) {
				t.Errorf("worker %d: dual SSSP diverges", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Exactly one build of each substrate despite the stampede: a fresh
	// query reports zero build rounds.
	post, err := p.MaxFlow(0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if post.Rounds.Build != 0 {
		t.Fatalf("post-stampede query Build=%d, want 0", post.Rounds.Build)
	}
}
