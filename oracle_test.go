package planarflow

import (
	"testing"
)

func TestDistanceOracleUndirected(t *testing.T) {
	g := GridGraph(4, 5) // unit weights
	o, err := NewDistanceOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	// Grid distances are Manhattan distances.
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			ru, cu := u/5, u%5
			rv, cv := v/5, v%5
			want := int64(abs(ru-rv) + abs(cu-cv))
			got, err := o.Dist(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("dist(%d,%d)=%d want %d", u, v, got, want)
			}
		}
	}
	if o.Rounds().Total <= 0 {
		t.Fatal("no construction rounds")
	}
}

func TestDistanceOracleDirected(t *testing.T) {
	// Default grid points right/down: opposite corner reachable, reverse
	// unreachable.
	g := GridGraph(3, 3)
	o, err := NewDirectedDistanceOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	d, err := o.Dist(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d != 4 {
		t.Fatalf("dist(0,8)=%d want 4", d)
	}
	back, _ := o.Dist(8, 0)
	if back != Inf {
		t.Fatalf("dist(8,0)=%d want Inf", back)
	}
}

func TestDistanceOracleDual(t *testing.T) {
	g := GridGraph(3, 3)
	o, err := NewDistanceOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent interior quads are one crossing apart.
	for f1 := 0; f1 < g.NumFaces(); f1++ {
		d, err := o.DualDist(f1, f1)
		if err != nil || d != 0 {
			t.Fatalf("self distance %d (%v)", d, err)
		}
	}
	if _, err := o.DualDist(0, g.NumFaces()); err == nil {
		t.Fatal("expected range error")
	}
}

func TestDistanceOracleLabelWords(t *testing.T) {
	g := GridGraph(6, 6)
	o, err := NewDistanceOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if w := o.LabelWords(v); w <= 0 || w > 60*g.Diameter() {
			t.Fatalf("label words %d out of Õ(D) range (D=%d)", w, g.Diameter())
		}
	}
}

func TestDistanceOracleNegativeCycleReported(t *testing.T) {
	g := GridGraph(3, 3).WithAttrs(func(e int, old Edge) Edge {
		old.Weight = -1
		return old
	})
	if _, err := NewDistanceOracle(g); err == nil {
		t.Fatal("expected negative cycle error")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
