// Supplychain: resilience analysis of a directed logistics network. The
// directed global minimum cut (Thm 1.5) finds the cheapest set of shipping
// lanes whose failure strands some region (no outgoing freight), without
// fixing a source/sink pair in advance — the global version of the
// bottleneck question. The directed girth (the [36] SSSP route) bounds the
// shortest possible routing loop.
package main

import (
	"fmt"
	"log"

	"planarflow"
)

func main() {
	// A one-way logistics network: snake-style lane directions keep every
	// hub mutually reachable, so stranding a region always costs something.
	g := planarflow.BoustrophedonGridGraph(6, 10).WithRandomAttrs(5, 1, 9, 1, 1)

	cut, err := planarflow.GlobalMinCut(g)
	if err != nil {
		log.Fatal(err)
	}
	if cut.Value == 0 {
		// Some region already has no outgoing lanes: report it.
		stranded := 0
		for _, inSide := range cut.Side {
			if inSide {
				stranded++
			}
		}
		fmt.Printf("network already has a zero-cost failure mode: a %d-hub region "+
			"with no outgoing lanes\n", stranded)
	} else {
		fmt.Printf("cheapest region-stranding failure: %d capacity across %d lanes\n",
			cut.Value, len(cut.CutEdges))
		for _, e := range cut.CutEdges {
			ed := g.EdgeAt(e)
			fmt.Printf("  lane %3d: hub %2d -> %2d (weight %d)\n", e, ed.U, ed.V, ed.Weight)
		}
	}

	loop, err := planarflow.DirectedGirth(g)
	if err != nil {
		log.Fatal(err)
	}
	if loop.Weight == planarflow.Inf {
		fmt.Println("routing graph is acyclic: no freight can loop")
	} else {
		fmt.Printf("shortest possible routing loop: total weight %d\n", loop.Weight)
	}
	fmt.Printf("cost: global cut %d rounds, directed girth %d rounds (both Õ(D²); D=%d)\n",
		cut.Rounds.Total, loop.Rounds.Total, g.Diameter())
}
