// Quickstart: build a small planar network, compute an exact maximum
// st-flow and its minimum cut, and print the simulated CONGEST round cost.
package main

import (
	"fmt"
	"log"

	"planarflow"
)

func main() {
	// A 6x8 grid network with random integer capacities in [1, 20].
	g := planarflow.GridGraph(6, 8).WithRandomAttrs(42, 1, 1, 1, 20)
	s, t := 0, g.N()-1 // opposite corners

	flow, err := planarflow.MaxFlow(g, s, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max st-flow value: %d (binary-search iterations: %d)\n",
		flow.Value, flow.Iterations)

	if err := planarflow.CheckFlow(g, s, t, flow.Flow, flow.Value); err != nil {
		log.Fatalf("flow verification failed: %v", err)
	}
	fmt.Println("flow assignment verified: capacities respected, conservation holds")

	cut, err := planarflow.MinSTCut(g, s, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min st-cut value: %d across %d edges (max-flow = min-cut: %v)\n",
		cut.Value, len(cut.CutEdges), cut.Value == flow.Value)

	fmt.Printf("simulated CONGEST cost: %d rounds (measured %d, charged %d) on D=%d\n",
		flow.Rounds.Total, flow.Rounds.Measured, flow.Rounds.Charged, g.Diameter())
}
