// Quickstart: build a small planar network, prepare it for serving, and
// run queries through the typed query plane — one Do call per query, one
// DoBatch for a mixed batch — printing results and the simulated CONGEST
// round cost.
package main

import (
	"context"
	"fmt"
	"log"

	"planarflow"
)

func main() {
	// A 6x8 grid network with random integer capacities in [1, 20].
	g := planarflow.GridGraph(6, 8).WithRandomAttrs(42, 1, 1, 1, 20)
	s, t := 0, g.N()-1 // opposite corners
	ctx := context.Background()

	// Prepare builds nothing yet; Warm prefetches the serving substrates
	// (BDD + labelings) so the queries below find them resident.
	p, err := planarflow.Prepare(g)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Warm(ctx); err != nil {
		log.Fatal(err)
	}

	// One query, one Do call: every family is a first-class Query value.
	flow, err := p.Do(ctx, planarflow.MaxFlowQuery(s, t))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max st-flow value: %d (binary-search iterations: %d)\n",
		flow.Value, flow.Iterations)

	if err := planarflow.CheckFlow(g, s, t, flow.Flow, flow.Value); err != nil {
		log.Fatalf("flow verification failed: %v", err)
	}
	fmt.Println("flow assignment verified: capacities respected, conservation holds")

	// A mixed-family batch: executed with a bounded worker pool after a
	// single-pass substrate warmup, errors isolated per query.
	answers, err := p.DoBatch(ctx, []planarflow.Query{
		planarflow.MinSTCutQuery(s, t),
		planarflow.DistQuery(s, t),
		planarflow.GirthQuery(),
	}, planarflow.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range answers {
		if a.Err != nil {
			log.Fatalf("%s failed: %v", a.Kind, a.Err)
		}
	}
	cut, dist, girth := answers[0], answers[1], answers[2]
	fmt.Printf("min st-cut value: %d across %d edges (max-flow = min-cut: %v)\n",
		cut.Value, len(cut.Edges), cut.Value == flow.Value)
	fmt.Printf("shortest s-t distance: %d; girth: %d\n", dist.Value, girth.Value)

	// Warm substrates mean the queries paid no build rounds; the one-time
	// construction cost is on the prepared graph's build ledger.
	fmt.Printf("simulated CONGEST cost: %d rounds (measured %d, charged %d) on D=%d\n",
		flow.Rounds.Total, flow.Rounds.Measured, flow.Rounds.Charged, g.Diameter())
	fmt.Printf("one-time substrate build: %d rounds, amortized across every query\n",
		p.BuildRounds().Total)
}
