package main

import (
	"testing"

	"planarflow/internal/cmdtest"
)

func TestSmoke(t *testing.T) {
	out := cmdtest.RunMain(t)
	cmdtest.ExpectMarkers(t, out,
		"max st-flow value:",
		"flow assignment verified",
		"max-flow = min-cut: true",
		"shortest s-t distance:",
		"simulated CONGEST cost:",
		"one-time substrate build:")
}
