// Girthmesh: shortest-cycle detection in a sensor mesh. The weighted girth
// of the communication graph bounds how quickly feedback loops can form
// (e.g. gossip echo, routing micro-loops); Theorem 1.7 finds it in Õ(D)
// rounds — the same order as a single BFS — by computing a minimum cut of
// the dual graph.
package main

import (
	"fmt"
	"log"

	"planarflow"
)

func main() {
	// A cylindrical sensor belt (e.g. around a pipeline): 6 rings of 30
	// sensors; link weights are measured latencies in [5, 40] ms.
	g := planarflow.CylinderGraph(6, 30).WithRandomAttrs(3, 5, 40, 1, 1)

	res, err := planarflow.Girth(g)
	if err != nil {
		log.Fatal(err)
	}
	if res.Weight == planarflow.Inf {
		fmt.Println("mesh is acyclic: no feedback loops possible")
		return
	}
	fmt.Printf("fastest feedback loop: %d ms around %d links\n",
		res.Weight, len(res.CycleEdges))
	for _, e := range res.CycleEdges {
		ed := g.EdgeAt(e)
		fmt.Printf("  link %3d: sensor %3d <-> %3d (%d ms)\n", e, ed.U, ed.V, ed.Weight)
	}

	fmt.Printf("cost: %d simulated CONGEST rounds (D = %d) — near-linear in D, "+
		"not D² (Thm 1.7 vs the D² SSSP route)\n",
		res.Rounds.Total, g.Diameter())
}
