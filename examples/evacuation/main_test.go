package main

import (
	"testing"

	"planarflow/internal/cmdtest"
)

func TestSmoke(t *testing.T) {
	out := cmdtest.RunMain(t)
	cmdtest.ExpectMarkers(t, out,
		"evacuation rate",
		"plan verified",
		"optimal rate:")
}
