// Evacuation: approximate st-planar flow for emergency planning. A coastal
// district must evacuate from the waterfront (s) to the inland highway
// ramp (t); both lie on the outer face of the planar street network, so
// Hassin's reduction applies and Theorem 1.3 gives a (1-ε)-approximate
// evacuation plan in near-optimal D·n^{o(1)} rounds — much faster than the
// exact Õ(D²) algorithm, at a 10% capacity discount.
package main

import (
	"fmt"
	"log"

	"planarflow"
)

func main() {
	const rows, cols = 10, 14
	// Street capacities: people per minute, 100-800 per street.
	g := planarflow.GridGraph(rows, cols).WithRandomAttrs(11, 1, 1, 100, 800)
	s := 0             // waterfront corner
	t := rows*cols - 1 // highway ramp (also on the outer face)
	if !g.SharedFace(s, t) {
		log.Fatal("s and t must share a face for the st-planar algorithm")
	}

	const eps = 0.1
	approx, err := planarflow.ApproxMaxFlowSTPlanar(g, s, t, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evacuation rate (>= %.0f%% of optimal): %d people/min\n",
		100*(1-eps), approx.Value)

	// The assignment is a real routable plan: verify it.
	if err := planarflow.CheckUndirectedFlow(g, s, t, approx.Flow, approx.Value); err != nil {
		log.Fatalf("plan verification failed: %v", err)
	}
	fmt.Println("plan verified: street capacities respected, no people lost at intersections")

	// Exact run (ε = 0) for comparison, and the choke-point cut.
	exact, err := planarflow.ApproxMaxFlowSTPlanar(g, s, t, 0)
	if err != nil {
		log.Fatal(err)
	}
	cut, err := planarflow.ApproxMinCutSTPlanar(g, s, t, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal rate: %d people/min; approximation achieved %.1f%%\n",
		exact.Value, 100*float64(approx.Value)/float64(exact.Value))
	fmt.Printf("choke point: %d streets with total capacity %d\n",
		len(cut.CutEdges), cut.Value)
	fmt.Printf("cost: approx %d rounds vs exact max-flow route Õ(D²); D = %d\n",
		approx.Rounds.Total, g.Diameter())
}
