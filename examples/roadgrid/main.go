// Roadgrid: capacity planning on a directed road network. City road grids
// are planar; this example models rush-hour throughput from a residential
// corner to the business district as a directed max-flow, then uses the
// min-cut bisection to locate the bottleneck streets that cap throughput.
package main

import (
	"fmt"
	"log"

	"planarflow"
)

func main() {
	const rows, cols = 8, 12
	// Streets: a one-way downtown grid (eastbound and southbound only, the
	// Manhattan pattern) with lane capacities 1-6 vehicles per unit time.
	g := planarflow.GridGraph(rows, cols).WithRandomAttrs(7, 1, 1, 1, 6)

	src := 0             // residential corner
	dst := rows*cols - 1 // business district
	flow, err := planarflow.MaxFlow(g, src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peak-hour throughput %d vehicles/unit from %d to %d\n",
		flow.Value, src, dst)

	cut, err := planarflow.MinSTCut(g, src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bottleneck: %d streets carry the entire flow:\n", len(cut.CutEdges))
	for _, e := range cut.CutEdges {
		ed := g.EdgeAt(e)
		fmt.Printf("  street %3d: intersection %3d -> %3d (capacity %d)\n",
			e, ed.U, ed.V, ed.Cap)
	}

	// Every cut street must be saturated by the max flow (complementary
	// slackness) — a useful operational sanity check.
	saturated := 0
	for _, e := range cut.CutEdges {
		if flow.Flow[e] == g.EdgeAt(e).Cap {
			saturated++
		}
	}
	fmt.Printf("saturated bottleneck streets: %d/%d\n", saturated, len(cut.CutEdges))
	fmt.Printf("distributed cost: %d rounds over a diameter-%d network\n",
		flow.Rounds.Total, g.Diameter())
}
